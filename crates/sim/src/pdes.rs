//! Conservative parallel discrete-event simulation (PDES) over
//! partitioned actors.
//!
//! [`ParallelSimulation`] splits a simulation's actors across `W` worker
//! threads. Each worker owns a private [`WheelQueue`] holding the events
//! of its own actors and executes them with the ordinary serial event
//! loop; the workers stay causally consistent through **synchronous
//! time windows** bounded by the simulation's **lookahead** `L` — the
//! caller-guaranteed minimum delay of any cross-partition message.
//!
//! # The window protocol
//!
//! Every round proceeds in lockstep:
//!
//! 1. **Merge.** Each worker drains its inbound mailboxes (events sent to
//!    it by other workers during the previous round) into its wheel.
//! 2. **Propose.** Each worker publishes the timestamp of its earliest
//!    pending event; a barrier makes all proposals visible.
//! 3. **Window.** Everyone computes the same global minimum `T` and
//!    executes local events in `[T, T + L)` (the window also never crosses
//!    the `run_until` deadline). A cross-partition send is buffered into a
//!    per-destination outbox instead of the local wheel; its arrival time
//!    is provably `≥ T + L`, i.e. **after** the window, so no worker can
//!    miss an event another worker is still producing.
//! 4. **Exchange.** A second barrier, after which outboxes become the next
//!    round's inboxes.
//!
//! Windows jump straight to the next global event time (step 3 recomputes
//! `T` every round), so idle stretches cost two barriers, not `L`-sized
//! busy steps.
//!
//! # Determinism and serial equivalence
//!
//! Event keys are `(time, lane)` with lanes derived from the *scheduling
//! actor* (see [`crate::engine`]), so a worker's wheel pops its actors'
//! events in exactly the order the serial engine would deliver them —
//! regardless of when remote events were merged, because merge always
//! completes before the window containing them executes. Runs are
//! therefore bit-reproducible per `(seed, workers)`; and as long as the
//! actors themselves have no cross-partition shared mutable state, a
//! parallel run is event-for-event identical to a serial run of the same
//! partitioned workload.
//!
//! The engine **panics** if an actor violates the lookahead contract by
//! sending a cross-partition message with delay `< L` — silently breaking
//! determinism would be far worse.

use crate::engine::{Actor, ActorId, Context, Event, ScheduleSink, LANE_SHIFT};
use crate::queue::{EventQueue, SchedulerStats, WheelQueue};
use crate::time::{SimDuration, SimTime};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A rejected parallel-simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PdesError {
    /// The lookahead (minimum cross-partition message delay) is zero:
    /// conservative windows would collapse to lockstep single-event
    /// steps, which is slower than running serially. Callers should fix
    /// the latency model (every cross-partition link needs a positive
    /// minimum) or run the serial engine.
    DegenerateLookahead {
        /// The offending lookahead, in milliseconds.
        lookahead_ms: f64,
    },
    /// A simulation needs at least one worker.
    NoWorkers,
}

impl fmt::Display for PdesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdesError::DegenerateLookahead { lookahead_ms } => write!(
                f,
                "degenerate lookahead {lookahead_ms} ms: every cross-partition link needs a \
                 positive minimum latency for conservative windows to make progress"
            ),
            PdesError::NoWorkers => write!(f, "parallel simulation needs at least one worker"),
        }
    }
}

impl std::error::Error for PdesError {}

/// Per-worker execution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PdesWorkerStats {
    /// Events this worker dispatched.
    pub events: u64,
    /// Windows this worker participated in.
    pub windows: u64,
    /// Cross-partition events this worker received and merged.
    pub merged_remote: u64,
    /// Cross-partition events this worker sent.
    pub sent_remote: u64,
    /// Times this worker yielded its timeslice while waiting at a
    /// barrier (a direct measure of load imbalance / barrier stall).
    pub barrier_yields: u64,
    /// Sum of executed window widths in nanoseconds (divide by `windows`
    /// for the mean horizon).
    pub sum_horizon_ns: u64,
}

/// A snapshot of the whole parallel run: one entry per worker plus the
/// configured lookahead.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PdesStats {
    /// The conservative horizon, in milliseconds.
    pub lookahead_ms: f64,
    /// Per-worker counters, indexed by worker.
    pub workers: Vec<PdesWorkerStats>,
}

impl PdesStats {
    /// Total events dispatched across all workers.
    pub fn total_events(&self) -> u64 {
        self.workers.iter().map(|w| w.events).sum()
    }

    /// Synchronous windows executed (same for every worker).
    pub fn windows(&self) -> u64 {
        self.workers.first().map_or(0, |w| w.windows)
    }

    /// Mean window width in milliseconds, if any window ran.
    pub fn mean_horizon_ms(&self) -> Option<f64> {
        let w = self.workers.first()?;
        (w.windows > 0).then(|| w.sum_horizon_ns as f64 / w.windows as f64 / 1e6)
    }
}

/// A cross-partition event in flight between two workers.
struct Remote<M> {
    at: SimTime,
    lane: u64,
    to: ActorId,
    event: Event<M>,
}

/// One worker: a dense slice of the actor set plus its private wheel.
struct Worker<A: Actor> {
    index: usize,
    actors: Vec<A>,
    /// Global ids of `actors`, parallel to it.
    ids: Vec<ActorId>,
    lane_counters: Vec<u64>,
    queue: WheelQueue<(ActorId, Event<A::Msg>)>,
    /// Per-destination-worker buffers, swapped into the shared mailbox
    /// cells at the exchange barrier.
    out_bufs: Vec<Vec<Remote<A::Msg>>>,
    now: SimTime,
    stats: PdesWorkerStats,
}

/// Shared synchronization state for one `run_until` call.
struct Shared<M> {
    barrier: SpinBarrier,
    /// Earliest pending event per worker (`u64::MAX` = idle).
    next_times: Vec<AtomicU64>,
    /// `W × W` mailbox cells, indexed `src * W + dst`.
    cells: Vec<Mutex<Vec<Remote<M>>>>,
    /// Set when any worker panics, so siblings spinning at the barrier
    /// unwind instead of waiting forever for a thread that died.
    poisoned: AtomicBool,
}

/// Marks the shared state poisoned if its worker thread unwinds.
struct PoisonGuard<'a>(&'a AtomicBool);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::SeqCst);
        }
    }
}

/// Routes an executing actor's sends: local destinations go straight into
/// the worker's wheel, cross-partition destinations into an outbox after
/// the lookahead check.
struct RoutingSink<'a, M> {
    local: &'a mut WheelQueue<(ActorId, Event<M>)>,
    out_bufs: &'a mut [Vec<Remote<M>>],
    owner_of: &'a [u32],
    me: u32,
    /// Exclusive end of the executing window, for the causality check.
    window_end_ns: u64,
    sent_remote: &'a mut u64,
}

impl<M> ScheduleSink<M> for RoutingSink<'_, M> {
    #[inline]
    fn schedule_event(&mut self, at: SimTime, lane: u64, to: ActorId, event: Event<M>) {
        let owner = self.owner_of[to];
        if owner == self.me {
            self.local.schedule(at, lane, (to, event));
        } else {
            assert!(
                at.as_nanos() >= self.window_end_ns,
                "cross-partition message to actor {to} arrives at {at}, inside the current \
                 window (end {} ns): the sender violated the lookahead contract",
                self.window_end_ns,
            );
            *self.sent_remote += 1;
            self.out_bufs[owner as usize].push(Remote { at, lane, to, event });
        }
    }
}

impl<A: Actor> Worker<A> {
    /// Run synchronous windows until the global next-event time passes
    /// `deadline`. Every worker executes this loop; all control decisions
    /// (window start, width, termination) are pure functions of the
    /// shared proposals, so the workers always agree.
    fn run_windows(
        &mut self,
        deadline: SimTime,
        lookahead: SimDuration,
        shared: &Shared<A::Msg>,
        owner_of: &[u32],
        local_of: &[u32],
    ) {
        let w = shared.next_times.len();
        let mut sense = false;
        loop {
            // 1. Merge inbound cross-partition events. Arrival order is
            // irrelevant: the wheel orders by the unique (time, lane) key.
            for src in 0..w {
                let mut inbox = shared.cells[src * w + self.index]
                    .lock()
                    .expect("mailbox poisoned: a sibling worker panicked");
                self.stats.merged_remote += inbox.len() as u64;
                for r in inbox.drain(..) {
                    self.queue.schedule(r.at, r.lane, (r.to, r.event));
                }
            }
            // 2. Propose: publish the earliest local pending time.
            let next = self.queue.next_time().map_or(u64::MAX, SimTime::as_nanos);
            shared.next_times[self.index].store(next, Ordering::SeqCst);
            shared.barrier.wait(&mut sense, &mut self.stats.barrier_yields, &shared.poisoned);
            // 3. Window: everyone computes the same global minimum.
            let min = shared
                .next_times
                .iter()
                .map(|t| t.load(Ordering::SeqCst))
                .min()
                .expect("at least one worker");
            if min == u64::MAX || min > deadline.as_nanos() {
                // Globally idle (or past the deadline): every worker
                // computes the same verdict, outboxes are already empty.
                self.now = deadline.max(self.now);
                return;
            }
            let end_ns = min
                .saturating_add(lookahead.as_nanos())
                .min(deadline.as_nanos().saturating_add(1));
            self.stats.windows += 1;
            self.stats.sum_horizon_ns += end_ns - min;
            while let Some(t) = self.queue.next_time() {
                if t.as_nanos() >= end_ns {
                    break;
                }
                let (time, (target, event)) = self.queue.pop().expect("peeked event vanished");
                debug_assert!(time >= self.now, "worker clock went backwards");
                self.now = time;
                self.stats.events += 1;
                let local = local_of[target] as usize;
                let mut sink = RoutingSink {
                    local: &mut self.queue,
                    out_bufs: &mut self.out_bufs,
                    owner_of,
                    me: self.index as u32,
                    window_end_ns: end_ns,
                    sent_remote: &mut self.stats.sent_remote,
                };
                let mut ctx = Context {
                    now: time,
                    self_id: target,
                    actors: owner_of.len(),
                    lane_counter: &mut self.lane_counters[local],
                    queue: &mut sink,
                };
                self.actors[local].on_event(&mut ctx, event);
            }
            // 4. Exchange: publish outboxes, then make them visible.
            for (dst, buf) in self.out_bufs.iter_mut().enumerate() {
                if !buf.is_empty() {
                    let mut cell = shared.cells[self.index * w + dst]
                        .lock()
                        .expect("mailbox poisoned: a sibling worker panicked");
                    debug_assert!(cell.is_empty(), "mailbox not drained");
                    // Swap rather than drain: recycles the receiver-side
                    // capacity back into our buffer.
                    std::mem::swap(&mut *cell, buf);
                }
            }
            shared.barrier.wait(&mut sense, &mut self.stats.barrier_yields, &shared.poisoned);
        }
    }
}

/// A conservative parallel discrete-event simulation: the multi-worker
/// counterpart of [`Simulation`](crate::Simulation). See the
/// [module docs](self) for the synchronization protocol.
///
/// Actors are registered with an explicit owning worker
/// ([`add_actor`](Self::add_actor)); ids are global and dense across
/// workers, so actors address each other exactly as in the serial engine.
pub struct ParallelSimulation<A: Actor> {
    workers: Vec<Worker<A>>,
    /// Global actor id → owning worker.
    owner_of: Vec<u32>,
    /// Global actor id → index within its worker.
    local_of: Vec<u32>,
    /// Lane counter for externally injected events (origin 0), shared
    /// across workers so injections sort exactly as in the serial engine.
    injections: u64,
    now: SimTime,
    lookahead: SimDuration,
}

impl<A: Actor> ParallelSimulation<A> {
    /// Empty simulation at time zero with `workers` empty partitions.
    ///
    /// `lookahead` is the caller-guaranteed minimum delay of any
    /// cross-partition message; a zero lookahead is rejected as
    /// [`PdesError::DegenerateLookahead`].
    pub fn new(workers: usize, lookahead: SimDuration) -> Result<Self, PdesError> {
        if workers == 0 {
            return Err(PdesError::NoWorkers);
        }
        if lookahead.as_nanos() == 0 {
            return Err(PdesError::DegenerateLookahead { lookahead_ms: lookahead.as_ms() });
        }
        Ok(Self {
            workers: (0..workers)
                .map(|index| Worker {
                    index,
                    actors: Vec::new(),
                    ids: Vec::new(),
                    lane_counters: Vec::new(),
                    queue: WheelQueue::default(),
                    out_bufs: (0..workers).map(|_| Vec::new()).collect(),
                    now: SimTime::ZERO,
                    stats: PdesWorkerStats::default(),
                })
                .collect(),
            owner_of: Vec::new(),
            local_of: Vec::new(),
            injections: 0,
            now: SimTime::ZERO,
            lookahead,
        })
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The configured lookahead.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Replace the lookahead (e.g. after the latency model changed
    /// between windows). Rejects zero exactly like [`new`](Self::new).
    pub fn set_lookahead(&mut self, lookahead: SimDuration) -> Result<(), PdesError> {
        if lookahead.as_nanos() == 0 {
            return Err(PdesError::DegenerateLookahead { lookahead_ms: lookahead.as_ms() });
        }
        self.lookahead = lookahead;
        Ok(())
    }

    /// Register an actor owned by `worker`; returns its global id.
    pub fn add_actor(&mut self, actor: A, worker: usize) -> ActorId {
        assert!(worker < self.workers.len(), "unknown worker {worker}");
        let id = self.owner_of.len();
        debug_assert!((id as u64 + 1) < (1 << (64 - LANE_SHIFT)), "actor id too large for lane");
        let w = &mut self.workers[worker];
        self.owner_of.push(worker as u32);
        self.local_of.push(w.actors.len() as u32);
        w.actors.push(actor);
        w.ids.push(id);
        w.lane_counters.push(0);
        id
    }

    /// Number of registered actors across all workers.
    pub fn actor_count(&self) -> usize {
        self.owner_of.len()
    }

    /// The worker owning `id`.
    pub fn owner_of(&self, id: ActorId) -> usize {
        self.owner_of[id] as usize
    }

    /// Immutable access to an actor (between runs).
    pub fn actor(&self, id: ActorId) -> &A {
        &self.workers[self.owner_of[id] as usize].actors[self.local_of[id] as usize]
    }

    /// Mutable access to an actor (between runs).
    pub fn actor_mut(&mut self, id: ActorId) -> &mut A {
        &mut self.workers[self.owner_of[id] as usize].actors[self.local_of[id] as usize]
    }

    /// Current simulated time (the deadline of the last
    /// [`run_until`](Self::run_until) call).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.workers.iter().map(|w| w.stats.events).sum()
    }

    /// Events currently waiting across all worker wheels.
    pub fn pending_events(&self) -> usize {
        self.workers.iter().map(|w| w.queue.len()).sum()
    }

    /// Timestamp of the globally earliest pending event, if any.
    pub fn peek_next_time(&mut self) -> Option<SimTime> {
        self.workers.iter_mut().filter_map(|w| w.queue.next_time()).min()
    }

    /// Scheduler counters summed across the worker wheels.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        let mut total = SchedulerStats::default();
        for w in &self.workers {
            let s = w.queue.stats();
            total.pending += s.pending;
            total.peak_pending += s.peak_pending;
            total.scheduled += s.scheduled;
            total.cascaded += s.cascaded;
            total.occupied_slots += s.occupied_slots;
            total.ready += s.ready;
        }
        total
    }

    /// Per-worker execution counters.
    pub fn stats(&self) -> PdesStats {
        PdesStats {
            lookahead_ms: self.lookahead.as_ms(),
            workers: self.workers.iter().map(|w| w.stats).collect(),
        }
    }

    /// Inject an external message at an absolute simulated time (not
    /// before the current time). Injections at the same instant sort
    /// before actor-scheduled events and in injection order — exactly
    /// like the serial engine.
    pub fn inject_at(&mut self, target: ActorId, at: SimTime, msg: A::Msg) {
        assert!(target < self.owner_of.len(), "unknown actor {target}");
        assert!(at >= self.now, "cannot schedule in the past: {at} < {}", self.now);
        debug_assert!(self.injections < (1 << LANE_SHIFT), "injection lane counter overflow");
        let lane = self.injections;
        self.injections += 1;
        let owner = self.owner_of[target] as usize;
        self.workers[owner].queue.schedule(at, lane, (target, Event::Message { from: target, msg }));
    }

    /// Inject an external message `delay_ms` after the current time.
    pub fn inject(&mut self, target: ActorId, delay_ms: f64, msg: A::Msg) {
        self.inject_at(target, self.now + SimDuration::from_ms(delay_ms), msg);
    }
}

impl<A: Actor + Send> ParallelSimulation<A>
where
    A::Msg: Send,
{
    /// Run all workers until the queue is globally empty **or** the next
    /// event is strictly after `deadline`; the clock is then advanced to
    /// `deadline`. Events exactly at `deadline` are processed — the same
    /// contract as the serial [`run_until`](crate::Simulation::run_until).
    pub fn run_until(&mut self, deadline: SimTime) {
        let w = self.workers.len();
        let shared: Shared<A::Msg> = Shared {
            barrier: SpinBarrier::new(w),
            next_times: (0..w).map(|_| AtomicU64::new(u64::MAX)).collect(),
            cells: (0..w * w).map(|_| Mutex::new(Vec::new())).collect(),
            poisoned: AtomicBool::new(false),
        };
        let lookahead = self.lookahead;
        let owner_of = &self.owner_of;
        let local_of = &self.local_of;
        if w == 1 {
            // Single worker: no sibling to synchronize with, run inline.
            self.workers[0].run_windows(deadline, lookahead, &shared, owner_of, local_of);
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .workers
                    .iter_mut()
                    .map(|worker| {
                        let shared = &shared;
                        s.spawn(move || {
                            let _guard = PoisonGuard(&shared.poisoned);
                            worker.run_windows(deadline, lookahead, shared, owner_of, local_of);
                        })
                    })
                    .collect();
                // Join by hand so a worker's panic payload (e.g. the
                // lookahead-contract message) reaches the caller intact
                // instead of scope's generic "a scoped thread panicked".
                let mut first_panic = None;
                for h in handles {
                    if let Err(payload) = h.join() {
                        first_panic.get_or_insert(payload);
                    }
                }
                if let Some(payload) = first_panic {
                    std::panic::resume_unwind(payload);
                }
            });
        }
        self.now = self.now.max(deadline);
    }
}

impl<A: Actor> fmt::Debug for ParallelSimulation<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParallelSimulation")
            .field("workers", &self.workers.len())
            .field("actors", &self.owner_of.len())
            .field("now", &self.now)
            .field("lookahead_ms", &self.lookahead.as_ms())
            .field("pending", &self.pending_events())
            .finish()
    }
}

/// A sense-reversing barrier that spins briefly and then yields.
///
/// `std::sync::Barrier` parks on a mutex/condvar pair — microseconds per
/// crossing, which is ruinous at one window per few hundred microseconds
/// of simulated time. Workers here spin a few dozen iterations (the
/// common case when partitions are balanced) before yielding their
/// timeslice, which keeps oversubscribed hosts (more workers than cores)
/// live.
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

/// Spins before the first yield per barrier crossing.
const SPIN_LIMIT: u32 = 64;

impl SpinBarrier {
    fn new(n: usize) -> Self {
        Self { n, count: AtomicUsize::new(0), sense: AtomicBool::new(false) }
    }

    /// Block until all `n` workers arrive. `local_sense` must be a
    /// per-worker flag starting `false`; `yields` counts ceded
    /// timeslices for the stall statistics. Panics (rather than spinning
    /// forever) if `poisoned` reports that a sibling worker died.
    fn wait(&self, local_sense: &mut bool, yields: &mut u64, poisoned: &AtomicBool) {
        let target = !*local_sense;
        *local_sense = target;
        if self.count.fetch_add(1, Ordering::SeqCst) + 1 == self.n {
            self.count.store(0, Ordering::SeqCst);
            self.sense.store(target, Ordering::SeqCst);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::SeqCst) != target {
                assert!(!poisoned.load(Ordering::SeqCst), "sibling worker panicked");
                if spins < SPIN_LIMIT {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    *yields += 1;
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;

    /// Deterministic ping-pong actor: forwards a decremented counter to a
    /// fixed peer with a fixed delay, recording everything it sees.
    struct Relay {
        peer: ActorId,
        delay_ms: f64,
        log: Vec<(u64, u64)>,
    }

    impl Actor for Relay {
        type Msg = u64;
        fn on_event(&mut self, ctx: &mut Context<'_, u64>, ev: Event<u64>) {
            if let Event::Message { msg, .. } = ev {
                self.log.push((ctx.now().as_nanos(), msg));
                if msg > 0 {
                    ctx.send(self.peer, self.delay_ms, msg - 1);
                }
            }
        }
    }

    fn relay_ring(n: usize, delay_ms: f64) -> Vec<Relay> {
        (0..n).map(|i| Relay { peer: (i + 1) % n, delay_ms, log: Vec::new() }).collect()
    }

    /// The same ring workload on the serial engine and on 1/2/4-worker
    /// parallel engines: logs must be identical everywhere.
    #[test]
    fn parallel_matches_serial_on_relay_ring() {
        let n = 8;
        let delay = 1.25;
        let deadline = SimTime::from_ms(500.0);

        let mut serial = Simulation::new();
        for r in relay_ring(n, delay) {
            serial.add_actor(r);
        }
        for i in 0..n {
            serial.inject(i, 0.0, 300 + i as u64);
        }
        serial.run_until(deadline);
        let reference: Vec<Vec<(u64, u64)>> = (0..n).map(|i| serial.actor(i).log.clone()).collect();
        assert!(serial.events_processed() > 1_000, "workload too small to be meaningful");

        for workers in [1, 2, 4] {
            let mut par =
                ParallelSimulation::new(workers, SimDuration::from_ms(delay)).expect("valid");
            for (i, r) in relay_ring(n, delay).into_iter().enumerate() {
                par.add_actor(r, i % workers);
            }
            for i in 0..n {
                par.inject(i, 0.0, 300 + i as u64);
            }
            par.run_until(deadline);
            assert_eq!(par.events_processed(), serial.events_processed(), "{workers} workers");
            for (i, expected) in reference.iter().enumerate() {
                assert_eq!(&par.actor(i).log, expected, "actor {i}, {workers} workers");
            }
            let stats = par.stats();
            assert_eq!(stats.workers.len(), workers);
            assert_eq!(stats.total_events(), par.events_processed());
            if workers > 1 {
                assert!(stats.workers.iter().any(|w| w.sent_remote > 0), "ring must cross");
                assert!(stats.windows() > 0);
            }
        }
    }

    /// Same-instant injections sort in injection order on every engine.
    #[test]
    fn injection_order_is_preserved_across_partitions() {
        let run = |workers: usize| {
            let mut par = ParallelSimulation::new(workers, SimDuration::from_ms(1.0)).unwrap();
            for i in 0..4usize {
                par.add_actor(Relay { peer: i, delay_ms: 1.0, log: Vec::new() }, i % workers);
            }
            for round in 0..16u64 {
                for i in 0..4usize {
                    par.inject_at(i, SimTime::from_ms(5.0), 100 * round + i as u64);
                }
            }
            par.run_until(SimTime::from_ms(50.0));
            (0..4).map(|i| par.actor(i).log.clone()).collect::<Vec<_>>()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(4));
    }

    #[test]
    fn zero_lookahead_is_rejected() {
        let err = ParallelSimulation::<Relay>::new(2, SimDuration::ZERO).unwrap_err();
        assert_eq!(err, PdesError::DegenerateLookahead { lookahead_ms: 0.0 });
        let mut sim = ParallelSimulation::<Relay>::new(2, SimDuration::from_ms(1.0)).unwrap();
        assert_eq!(sim.set_lookahead(SimDuration::ZERO).unwrap_err(), err);
        assert!(ParallelSimulation::<Relay>::new(0, SimDuration::from_ms(1.0)).is_err());
    }

    #[test]
    #[should_panic(expected = "lookahead contract")]
    fn lookahead_violation_panics() {
        // Two actors on different workers exchanging messages *faster*
        // than the declared lookahead: the router must catch it.
        let mut par = ParallelSimulation::new(2, SimDuration::from_ms(5.0)).unwrap();
        par.add_actor(Relay { peer: 1, delay_ms: 0.5, log: Vec::new() }, 0);
        par.add_actor(Relay { peer: 0, delay_ms: 0.5, log: Vec::new() }, 1);
        par.inject(0, 0.0, 10);
        par.run_until(SimTime::from_ms(100.0));
    }

    /// `run_until` advances the clock to the deadline even when idle, and
    /// processes events exactly at the deadline — the serial contract.
    #[test]
    fn run_until_contract_matches_serial() {
        let mut par = ParallelSimulation::new(2, SimDuration::from_ms(1.0)).unwrap();
        par.add_actor(Relay { peer: 0, delay_ms: 1.0, log: Vec::new() }, 0);
        par.run_until(SimTime::from_ms(42.0));
        assert_eq!(par.now(), SimTime::from_ms(42.0));
        // An event exactly at a later deadline is processed by that call.
        par.inject_at(0, SimTime::from_ms(50.0), 0);
        par.run_until(SimTime::from_ms(50.0));
        assert_eq!(par.actor(0).log, vec![(SimTime::from_ms(50.0).as_nanos(), 0)]);
    }
}
