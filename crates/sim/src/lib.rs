//! # pbs-sim — deterministic discrete-event simulation kernel
//!
//! The PBS paper validated its WARS model against a modified Apache
//! Cassandra deployment (§5.2). This workspace replaces those three physical
//! servers with a deterministic, seeded discrete-event simulator: `pbs-kvs`
//! runs the same Dynamo-style message flow on top of this kernel, with
//! per-message latencies drawn from the same distributions the paper
//! injected into Cassandra.
//!
//! Design goals, in priority order:
//!
//! 1. **Determinism** — identical seeds and inputs yield identical event
//!    orders. Events are ordered by `(time, lane)`, where the lane packs
//!    the scheduling actor's id with its private monotone counter (the
//!    full contract is spelled out in [`queue::EventQueue`] and
//!    [`engine`]); the key is locally computable, which is what lets the
//!    conservative parallel engine ([`pdes`]) partition actors across
//!    worker threads and still match the serial engine event for event.
//!    The kernel owns no RNG: actors sample latencies themselves from
//!    RNGs they own, so the kernel never perturbs randomness.
//! 2. **Zero `unsafe`, no dependencies** — a timer wheel and a virtual
//!    clock.
//! 3. **Speed** — the open-loop engine dispatches millions of events per
//!    second; scheduling is amortised `O(1)` on a hierarchical timer
//!    wheel ([`queue::WheelQueue`]) and allocation-free in steady state
//!    (slot buckets, the sort scratch, and the outbox buffer are all
//!    recycled between events). The reference binary-heap scheduler is
//!    kept behind the `heap-scheduler` feature for A/B benchmarking, and
//!    as the oracle for the wheel's equivalence property tests — the
//!    two produce **bit-identical** event orders because the ordering
//!    contract is a total order.
//!
//! See [`Simulation`] for the event loop, [`Actor`] for the behaviour
//! trait, and [`queue`] for the scheduler implementations and their
//! shared ordering contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod pdes;
pub mod queue;
pub mod time;

pub use engine::{Actor, ActorId, Context, DefaultQueue, Event, Simulation};
pub use pdes::{ParallelSimulation, PdesError, PdesStats, PdesWorkerStats};
pub use queue::{EventQueue, HeapQueue, SchedulerStats, WheelQueue};
pub use time::{SimDuration, SimTime, SkewedClock};
