//! # pbs-sim — deterministic discrete-event simulation kernel
//!
//! The PBS paper validated its WARS model against a modified Apache
//! Cassandra deployment (§5.2). This workspace replaces those three physical
//! servers with a deterministic, seeded discrete-event simulator: `pbs-kvs`
//! runs the same Dynamo-style message flow on top of this kernel, with
//! per-message latencies drawn from the same distributions the paper
//! injected into Cassandra.
//!
//! Design goals, in priority order:
//!
//! 1. **Determinism** — identical seeds and inputs yield identical event
//!    orders. Events are ordered by `(time, sequence-number)`; simultaneous
//!    events fire in schedule order. The kernel owns no RNG: actors sample
//!    latencies themselves from RNGs they own, so the kernel never
//!    perturbs randomness.
//! 2. **Zero `unsafe`, no dependencies** — a binary heap and a virtual
//!    clock.
//! 3. **Speed** — the WARS validation runs hundreds of thousands of
//!    operations; event dispatch is allocation-free in steady state
//!    (a reusable outbox buffer is recycled between events).
//!
//! See [`Simulation`] for the event loop and [`Actor`] for the behaviour
//! trait.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod time;

pub use engine::{Actor, ActorId, Context, Event, Simulation};
pub use time::{SimDuration, SimTime};
