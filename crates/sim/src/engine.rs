//! The event loop: actors, messages, timers, and the scheduler.
//!
//! # Ordering contract
//!
//! Events are delivered in ascending `(time, lane)` order. The lane is a
//! `u64` packed from the event's **origin**: an event scheduled by actor
//! `a` carries lane `(a + 1) << 40 | c` where `c` is `a`'s private
//! monotone counter, and an externally injected event carries lane `c`
//! drawn from the simulation's injection counter (so injections at time
//! `t` sort before actor-scheduled events at `t`). Two consequences:
//!
//! * **Per-origin FIFO.** Equal-time events from the same origin fire in
//!   the order they were scheduled; equal-time events from different
//!   origins fire in origin-id order. The key is a total order (counters
//!   never repeat), so swapping the scheduler implementation (see
//!   [`queue`]) cannot change any seeded run's behaviour.
//! * **Locally computable keys.** The key depends only on the scheduling
//!   actor's own state, never on a global counter — which is what lets
//!   the parallel engine ([`crate::pdes`]) partition actors across
//!   worker wheels and still deliver the exact event sequence the serial
//!   engine delivers.
//!
//! [`queue`]: crate::queue

use crate::queue::{EventQueue, SchedulerStats};
use crate::time::{SimDuration, SimTime};

/// Bits reserved for the per-origin counter in a lane key. Actor `a`'s
/// lanes are `(a + 1) << LANE_SHIFT | counter`; injections use the bare
/// counter (origin 0).
pub(crate) const LANE_SHIFT: u32 = 40;

/// Pack a scheduling actor's id and private counter into a lane key,
/// bumping the counter.
#[inline]
pub(crate) fn next_actor_lane(id: ActorId, counter: &mut u64) -> u64 {
    debug_assert!(*counter < (1 << LANE_SHIFT), "lane counter overflow for actor {id}");
    debug_assert!(((id as u64) + 1) < (1 << (64 - LANE_SHIFT)), "actor id {id} too large for lane");
    let lane = ((id as u64) + 1) << LANE_SHIFT | *counter;
    *counter += 1;
    lane
}

/// Index of an actor within a [`Simulation`].
pub type ActorId = usize;

/// Something an actor can receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<M> {
    /// A message from another actor (or injected externally).
    Message {
        /// Sending actor. External injections use the destination itself.
        from: ActorId,
        /// The payload.
        msg: M,
    },
    /// A timer the actor previously set via [`Context::set_timer`].
    Timer {
        /// The tag passed to `set_timer`, so actors can multiplex timers.
        tag: u64,
    },
}

/// Simulation behaviour: each actor handles messages and timers, emitting
/// new messages/timers through the [`Context`].
pub trait Actor {
    /// Message type exchanged in this simulation.
    type Msg;

    /// Handle one event. All effects go through `ctx`.
    fn on_event(&mut self, ctx: &mut Context<'_, Self::Msg>, event: Event<Self::Msg>);
}

/// Handle through which an actor interacts with the simulation during
/// event processing.
///
/// Effects are scheduled **directly** into the event queue (through an
/// erased sink, so `Context` stays non-generic over the scheduler): no
/// intermediate outbox buffer, no second copy per message.
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) self_id: ActorId,
    pub(crate) actors: usize,
    pub(crate) lane_counter: &'a mut u64,
    pub(crate) queue: &'a mut dyn ScheduleSink<M>,
}

impl<M> std::fmt::Debug for Context<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("now", &self.now)
            .field("self_id", &self.self_id)
            .finish()
    }
}

impl<M> Context<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The handling actor's own id.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Send `msg` to `to`, arriving after `delay_ms` (≥ 0) of simulated
    /// time. Equal-time sends from this actor are never reordered
    /// relative to each other.
    pub fn send(&mut self, to: ActorId, delay_ms: f64, msg: M) {
        assert!(to < self.actors, "message to unknown actor {to}");
        let at = self.now + SimDuration::from_ms(delay_ms);
        let lane = next_actor_lane(self.self_id, self.lane_counter);
        self.queue.schedule_event(at, lane, to, Event::Message { from: self.self_id, msg });
    }

    /// Arrange for a [`Event::Timer`] with `tag` to fire on this actor after
    /// `delay_ms`.
    pub fn set_timer(&mut self, delay_ms: f64, tag: u64) {
        let at = self.now + SimDuration::from_ms(delay_ms);
        let lane = next_actor_lane(self.self_id, self.lane_counter);
        self.queue.schedule_event(at, lane, self.self_id, Event::Timer { tag });
    }
}

/// Object-safe adapter that lets the non-generic [`Context`] schedule into
/// whichever [`EventQueue`] the simulation runs on — or, in the parallel
/// engine, into a router that forwards cross-partition events to their
/// owning worker.
pub(crate) trait ScheduleSink<M> {
    fn schedule_event(&mut self, at: SimTime, lane: u64, to: ActorId, event: Event<M>);
}

impl<M, Q: EventQueue<(ActorId, Event<M>)>> ScheduleSink<M> for Q {
    #[inline]
    fn schedule_event(&mut self, at: SimTime, lane: u64, to: ActorId, event: Event<M>) {
        self.schedule(at, lane, (to, event));
    }
}

/// The scheduler used by [`Simulation`] unless overridden: the timer
/// wheel, or the reference binary heap when the `heap-scheduler` feature
/// is enabled (for A/B benchmarking on identical workloads).
#[cfg(not(feature = "heap-scheduler"))]
pub type DefaultQueue<M> = crate::queue::WheelQueue<(ActorId, Event<M>)>;
/// The scheduler used by [`Simulation`] unless overridden: the timer
/// wheel, or the reference binary heap when the `heap-scheduler` feature
/// is enabled (for A/B benchmarking on identical workloads).
#[cfg(feature = "heap-scheduler")]
pub type DefaultQueue<M> = crate::queue::HeapQueue<(ActorId, Event<M>)>;

/// A deterministic discrete-event simulation over a homogeneous set of
/// actors.
///
/// ```
/// use pbs_sim::{Actor, Context, Event, Simulation, SimTime};
///
/// struct Counter(u32);
/// impl Actor for Counter {
///     type Msg = u32;
///     fn on_event(&mut self, ctx: &mut Context<'_, u32>, ev: Event<u32>) {
///         if let Event::Message { msg, .. } = ev {
///             self.0 += msg;
///             if msg > 1 {
///                 // Halve and forward to ourselves 1ms later.
///                 ctx.send(ctx.self_id(), 1.0, msg / 2);
///             }
///         }
///     }
/// }
///
/// let mut sim = Simulation::new();
/// let a = sim.add_actor(Counter(0));
/// sim.inject(a, 0.0, 8);
/// sim.run_until_idle();
/// assert_eq!(sim.actor(a).0, 8 + 4 + 2 + 1);
/// assert_eq!(sim.now(), SimTime::from_ms(3.0));
/// ```
pub struct Simulation<A: Actor, Q = DefaultQueue<<A as Actor>::Msg>> {
    actors: Vec<A>,
    /// Per-actor lane counters, parallel to `actors`.
    lane_counters: Vec<u64>,
    /// Lane counter for externally injected events (origin 0).
    injections: u64,
    queue: Q,
    now: SimTime,
    events_processed: u64,
}

impl<A: Actor> Default for Simulation<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Actor> Simulation<A> {
    /// Empty simulation at time zero, on the default scheduler.
    pub fn new() -> Self {
        Self::with_queue(DefaultQueue::default())
    }
}

impl<A: Actor, Q: EventQueue<(ActorId, Event<A::Msg>)>> Simulation<A, Q> {
    /// Empty simulation at time zero, scheduling through `queue` — for
    /// tests and benchmarks that pin a specific scheduler implementation
    /// (e.g. comparing [`HeapQueue`](crate::queue::HeapQueue) against
    /// [`WheelQueue`](crate::queue::WheelQueue) on one workload).
    pub fn with_queue(queue: Q) -> Self {
        Self {
            actors: Vec::new(),
            lane_counters: Vec::new(),
            injections: 0,
            queue,
            now: SimTime::ZERO,
            events_processed: 0,
        }
    }

    /// Register an actor; returns its id.
    pub fn add_actor(&mut self, actor: A) -> ActorId {
        self.actors.push(actor);
        self.lane_counters.push(0);
        self.actors.len() - 1
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Immutable access to an actor (e.g. to read collected metrics).
    pub fn actor(&self, id: ActorId) -> &A {
        &self.actors[id]
    }

    /// Mutable access to an actor between event processing.
    pub fn actor_mut(&mut self, id: ActorId) -> &mut A {
        &mut self.actors[id]
    }

    /// Current simulated time (the timestamp of the last processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Timestamp of the next pending event, if any. Takes `&mut self`
    /// because the wheel scheduler materialises its front batch lazily.
    pub fn peek_next_time(&mut self) -> Option<SimTime> {
        self.queue.next_time()
    }

    /// Number of events currently waiting in the scheduler queue. Open-loop
    /// drivers use this to verify the queue stays bounded by in-flight work
    /// rather than total trace length.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Scheduler counters (pending/peak events, cascades, slot occupancy)
    /// for the `profile` harness.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.queue.stats()
    }

    /// Inject an external message to `target`, `delay_ms` after the current
    /// simulated time. The `from` field is set to `target` itself.
    /// Injections sort before actor-scheduled events at the same instant.
    pub fn inject(&mut self, target: ActorId, delay_ms: f64, msg: A::Msg) {
        assert!(target < self.actors.len(), "unknown actor {target}");
        let at = self.now + SimDuration::from_ms(delay_ms);
        self.push(at, target, Event::Message { from: target, msg });
    }

    /// Inject an external message at an **absolute** simulated time, which
    /// must not precede the current time. Workload drivers use this to
    /// pre-schedule entire traces.
    pub fn inject_at(&mut self, target: ActorId, at: SimTime, msg: A::Msg) {
        assert!(target < self.actors.len(), "unknown actor {target}");
        assert!(at >= self.now, "cannot schedule in the past: {at} < {}", self.now);
        self.push(at, target, Event::Message { from: target, msg });
    }

    fn push(&mut self, time: SimTime, target: ActorId, event: Event<A::Msg>) {
        debug_assert!(self.injections < (1 << LANE_SHIFT), "injection lane counter overflow");
        let lane = self.injections;
        self.injections += 1;
        self.queue.schedule(time, lane, (target, event));
    }

    /// Process a single event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((time, (target, event))) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "scheduler went backwards");
        self.now = time;
        self.events_processed += 1;

        // Disjoint field borrows: the handler mutates its own actor while
        // scheduling follow-ups straight into the queue.
        let mut ctx = Context {
            now: self.now,
            self_id: target,
            actors: self.actors.len(),
            lane_counter: &mut self.lane_counters[target],
            queue: &mut self.queue,
        };
        self.actors[target].on_event(&mut ctx, event);
        true
    }

    /// Run until no events remain. Panics after `u64::MAX` events (i.e.
    /// never in practice); use [`run_until`](Self::run_until) to bound
    /// non-quiescent systems.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    /// Run until the queue is empty **or** the next event is strictly after
    /// `deadline`; the clock is then advanced to `deadline` if it has not
    /// passed it. Events exactly at `deadline` are processed.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.peek_next_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }
}

impl<A: Actor, Q: EventQueue<(ActorId, Event<A::Msg>)>> std::fmt::Debug for Simulation<A, Q> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("actors", &self.actors.len())
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records every event it sees with its arrival time.
    struct Recorder {
        log: Vec<(SimTime, Event<&'static str>)>,
    }

    impl Actor for Recorder {
        type Msg = &'static str;
        fn on_event(&mut self, ctx: &mut Context<'_, &'static str>, ev: Event<&'static str>) {
            self.log.push((ctx.now(), ev));
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new();
        let a = sim.add_actor(Recorder { log: vec![] });
        sim.inject(a, 5.0, "late");
        sim.inject(a, 1.0, "early");
        sim.inject(a, 3.0, "middle");
        sim.run_until_idle();
        let texts: Vec<&str> = sim
            .actor(a)
            .log
            .iter()
            .map(|(_, e)| match e {
                Event::Message { msg, .. } => *msg,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(texts, ["early", "middle", "late"]);
        assert_eq!(sim.now(), SimTime::from_ms(5.0));
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn equal_times_fire_in_schedule_order() {
        let mut sim = Simulation::new();
        let a = sim.add_actor(Recorder { log: vec![] });
        for (i, name) in ["first", "second", "third"].iter().enumerate() {
            let _ = i;
            sim.inject(a, 2.0, name);
        }
        sim.run_until_idle();
        let texts: Vec<&str> = sim
            .actor(a)
            .log
            .iter()
            .map(|(_, e)| match e {
                Event::Message { msg, .. } => *msg,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(texts, ["first", "second", "third"]);
    }

    /// Two actors bouncing a counter back and forth with asymmetric delays.
    struct Ponger {
        peer: Option<ActorId>,
        remaining: u32,
        received: u32,
    }

    impl Actor for Ponger {
        type Msg = u32;
        fn on_event(&mut self, ctx: &mut Context<'_, u32>, ev: Event<u32>) {
            if let Event::Message { msg, .. } = ev {
                self.received += 1;
                if msg > 0 {
                    if let Some(peer) = self.peer {
                        ctx.send(peer, 1.5, msg - 1);
                    }
                }
                self.remaining = msg;
            }
        }
    }

    #[test]
    fn ping_pong_terminates_with_correct_clock() {
        let mut sim = Simulation::new();
        let a = sim.add_actor(Ponger { peer: None, remaining: 0, received: 0 });
        let b = sim.add_actor(Ponger { peer: None, remaining: 0, received: 0 });
        sim.actor_mut(a).peer = Some(b);
        sim.actor_mut(b).peer = Some(a);
        sim.inject(a, 0.0, 6);
        sim.run_until_idle();
        // 6 →5→4→3→2→1→0: seven messages total, six hops of 1.5 ms.
        assert_eq!(sim.actor(a).received + sim.actor(b).received, 7);
        assert_eq!(sim.now(), SimTime::from_ms(9.0));
    }

    struct TimerBeeper {
        fired: Vec<u64>,
    }

    impl Actor for TimerBeeper {
        type Msg = ();
        fn on_event(&mut self, ctx: &mut Context<'_, ()>, ev: Event<()>) {
            match ev {
                Event::Message { .. } => {
                    ctx.set_timer(10.0, 1);
                    ctx.set_timer(5.0, 2);
                }
                Event::Timer { tag } => self.fired.push(tag),
            }
        }
    }

    #[test]
    fn timers_fire_with_tags() {
        let mut sim = Simulation::new();
        let a = sim.add_actor(TimerBeeper { fired: vec![] });
        sim.inject(a, 0.0, ());
        sim.run_until_idle();
        assert_eq!(sim.actor(a).fired, vec![2, 1]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new();
        let a = sim.add_actor(Recorder { log: vec![] });
        sim.inject(a, 1.0, "in-window");
        sim.inject(a, 2.0, "at-deadline");
        sim.inject(a, 3.0, "beyond");
        sim.run_until(SimTime::from_ms(2.0));
        assert_eq!(sim.actor(a).log.len(), 2, "deadline-inclusive");
        assert_eq!(sim.now(), SimTime::from_ms(2.0));
        sim.run_until_idle();
        assert_eq!(sim.actor(a).log.len(), 3);
    }

    #[test]
    fn run_until_advances_clock_when_idle() {
        let mut sim: Simulation<Recorder> = Simulation::new();
        let _ = sim.add_actor(Recorder { log: vec![] });
        sim.run_until(SimTime::from_ms(42.0));
        assert_eq!(sim.now(), SimTime::from_ms(42.0));
    }

    #[test]
    fn inject_at_absolute_time() {
        let mut sim = Simulation::new();
        let a = sim.add_actor(Recorder { log: vec![] });
        sim.inject_at(a, SimTime::from_ms(7.5), "x");
        sim.run_until_idle();
        assert_eq!(sim.actor(a).log[0].0, SimTime::from_ms(7.5));
    }

    #[test]
    #[should_panic(expected = "unknown actor")]
    fn inject_to_unknown_actor_panics() {
        let mut sim: Simulation<Recorder> = Simulation::new();
        sim.inject(3, 0.0, "nope");
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut sim = Simulation::new();
            let a = sim.add_actor(Ponger { peer: None, remaining: 0, received: 0 });
            let b = sim.add_actor(Ponger { peer: None, remaining: 0, received: 0 });
            sim.actor_mut(a).peer = Some(b);
            sim.actor_mut(b).peer = Some(a);
            sim.inject(a, 0.25, 11);
            sim.run_until_idle();
            (sim.now(), sim.events_processed())
        };
        assert_eq!(run(), run());
    }
}
