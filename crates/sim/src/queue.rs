//! Event-queue implementations behind the simulation scheduler.
//!
//! Both queues implement the same **ordering contract** (see
//! [`EventQueue`]): events are delivered in ascending `(time, lane)`
//! order, where the **lane** is a caller-supplied `u64` tie-break that
//! must be unique among equal-time events. The engine derives lanes from
//! `(scheduling actor, per-actor counter)` (see [`crate::engine`]), which
//! makes the key *locally computable*: a partitioned simulation can
//! reproduce the exact same total order without a global counter, which
//! is what lets the parallel PDES engine ([`crate::pdes`]) merge
//! cross-partition events into per-worker wheels and still match the
//! serial engine event for event. Because the contract is a total order,
//! any two correct implementations deliver bit-identical event sequences
//! — which is what lets the calendar queue replace the binary heap
//! without perturbing a single seeded run.
//!
//! * [`HeapQueue`] — the reference implementation: a `BinaryHeap` ordered
//!   by `(time, seq)`. `O(log n)` per operation with large constant
//!   factors (pointer-heavy sift paths over ~100-byte entries).
//! * [`WheelQueue`] — a hierarchical timer wheel (calendar queue):
//!   amortised `O(1)` scheduling and `O(1)` pops, the default scheduler.
//!   See the type-level docs for the tick/overflow design.
//!
//! The `heap-scheduler` cargo feature switches [`Simulation`] back to the
//! heap so the two can be A/B-benchmarked on identical workloads
//! (`cargo bench -p pbs-bench --bench open_loop --features
//! pbs-sim/heap-scheduler`).
//!
//! [`schedule`]: EventQueue::schedule
//! [`Simulation`]: crate::Simulation

use crate::time::SimTime;
use std::collections::{BinaryHeap, VecDeque};

/// Counters describing scheduler behaviour, for the `profile` harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Events currently queued.
    pub pending: usize,
    /// High-water mark of `pending`.
    pub peak_pending: usize,
    /// Total events ever scheduled.
    pub scheduled: u64,
    /// Events redistributed from a higher wheel level to a lower one
    /// (0 for the heap; each event cascades at most `LEVELS − 1` times).
    pub cascaded: u64,
    /// Wheel slots currently occupied (0 for the heap).
    pub occupied_slots: usize,
    /// Length of the sorted front batch (0 for the heap).
    pub ready: usize,
}

/// A priority queue of timestamped events with caller-supplied lane
/// tie-breaking.
///
/// The contract every implementation must honour: [`pop`] returns events
/// in ascending `(time, lane)` order, where the lane is supplied by the
/// caller at [`schedule`] time and must be unique among events sharing a
/// timestamp (the engine guarantees this by packing the scheduling
/// actor's id with a per-actor monotone counter). Scheduling is only
/// ever *forward*: callers never schedule below the time of the last
/// popped event (the simulation clock is monotone).
///
/// [`pop`]: EventQueue::pop
/// [`schedule`]: EventQueue::schedule
pub trait EventQueue<T>: Default {
    /// Enqueue `item` to fire at `at`, tie-broken by `lane`.
    fn schedule(&mut self, at: SimTime, lane: u64, item: T);

    /// Remove and return the earliest event, or `None` when empty.
    fn pop(&mut self) -> Option<(SimTime, T)>;

    /// Timestamp of the earliest pending event. Takes `&mut self` because
    /// the wheel materialises its front batch lazily.
    fn next_time(&mut self) -> Option<SimTime>;

    /// Events currently queued.
    fn len(&self) -> usize;

    /// Whether no events are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scheduler counters (see [`SchedulerStats`]).
    fn stats(&self) -> SchedulerStats;
}

struct Entry<T> {
    time: SimTime,
    lane: u64,
    item: T,
}

impl<T> Entry<T> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.lane)
    }
}

// ---------------------------------------------------------------------------
// HeapQueue: the reference binary-heap scheduler.
// ---------------------------------------------------------------------------

struct HeapEntry<T>(Entry<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other.0.key().cmp(&self.0.key())
    }
}

/// The reference scheduler: a binary heap ordered by `(time, lane)`.
///
/// Kept (a) as the semantic oracle for the wheel's property tests and
/// (b) selectable via the `heap-scheduler` feature for A/B benchmarks.
pub struct HeapQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    scheduled: u64,
    peak: usize,
}

impl<T> Default for HeapQueue<T> {
    fn default() -> Self {
        Self { heap: BinaryHeap::new(), scheduled: 0, peak: 0 }
    }
}

impl<T> HeapQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<T> EventQueue<T> for HeapQueue<T> {
    fn schedule(&mut self, at: SimTime, lane: u64, item: T) {
        self.scheduled += 1;
        self.heap.push(HeapEntry(Entry { time: at, lane, item }));
        self.peak = self.peak.max(self.heap.len());
    }

    fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|HeapEntry(e)| (e.time, e.item))
    }

    fn next_time(&mut self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            pending: self.heap.len(),
            peak_pending: self.peak,
            scheduled: self.scheduled,
            ..SchedulerStats::default()
        }
    }
}

// ---------------------------------------------------------------------------
// WheelQueue: hierarchical timer wheel (calendar queue).
// ---------------------------------------------------------------------------

/// Tick width: `2^16` ns ≈ 65.5 µs. Events within one tick are ordered
/// exactly (by their nanosecond timestamps) when the tick is drained.
const TICK_SHIFT: u32 = 16;
/// log2(slots per level).
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Levels. `LEVELS × LEVEL_BITS = 48` bits of tick, and ticks are
/// `nanos >> 16`, so the wheel spans the **entire** `u64` nanosecond
/// range — there is no overflow list to manage.
const LEVELS: usize = 8;

/// A hierarchical timer wheel — the default scheduler.
///
/// # Design
///
/// Time is quantised into `2^16` ns ticks. Eight levels of 64 slots each
/// hash events by successive 6-bit groups of their tick number, so the
/// wheel's horizon is `2^48` ticks = the full `u64` nanosecond range; no
/// separate overflow structure is needed. An event lands at the lowest
/// level whose 6-bit group differs from the current wheel position
/// (`O(1)`: one XOR + `leading_zeros`), and cascades toward level 0 as
/// the wheel's clock reaches its slot — each event moves at most
/// `LEVELS − 1` times in its life.
///
/// The wheel clock does not tick through empty slots: per-level occupancy
/// bitmaps let [`next_time`](EventQueue::next_time) jump straight to the
/// next occupied slot. When a level-0 slot (one tick) expires, its events
/// are sorted by `(time, lane)` — restoring exact sub-tick order — into a
/// sorted **ready batch**. Events scheduled at or below the ready batch's
/// tick (zero-delay sends are the common case) are merged into the batch
/// by binary insertion, which preserves the global delivery order for any
/// insertion sequence because `(time, lane)` keys are unique. Pops are
/// `O(1)` pops off the front of the batch.
///
/// Slot vectors and the sort scratch buffer are recycled, so steady-state
/// scheduling performs no allocation.
pub struct WheelQueue<T> {
    /// `LEVELS × SLOTS` unsorted buckets, indexed `level * SLOTS + slot`.
    slots: Vec<Vec<Entry<T>>>,
    /// Per-level occupancy bitmap (bit `s` ⇔ slot `s` non-empty).
    occupancy: [u64; LEVELS],
    /// The wheel position: tick of the most recently expired slot. All
    /// queued events in the wheel have ticks strictly greater; events at
    /// or below it live in `ready`.
    now_tick: u64,
    /// Sorted front batch in ascending `(time, lane)` order.
    ready: VecDeque<Entry<T>>,
    /// Reusable buffer for slot drains.
    scratch: Vec<Entry<T>>,
    len: usize,
    scheduled: u64,
    peak: usize,
    cascaded: u64,
}

impl<T> Default for WheelQueue<T> {
    fn default() -> Self {
        Self {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [0; LEVELS],
            now_tick: 0,
            ready: VecDeque::new(),
            scratch: Vec::new(),
            len: 0,
            scheduled: 0,
            peak: 0,
            cascaded: 0,
        }
    }
}

impl<T> WheelQueue<T> {
    /// Empty queue at tick zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Place an entry: into the sorted ready batch when its tick is at or
    /// below the wheel position, else into the wheel level addressed by
    /// the highest differing 6-bit tick group.
    fn place(&mut self, e: Entry<T>) {
        let t_tick = e.time.as_nanos() >> TICK_SHIFT;
        if t_tick <= self.now_tick {
            // Fast path: a fresh zero-delay send usually carries the
            // largest key in the batch, so it belongs at the back unless
            // larger-keyed events are already waiting there.
            match self.ready.back() {
                Some(b) if b.key() > e.key() => {
                    let i = self.ready.partition_point(|x| x.key() < e.key());
                    self.ready.insert(i, e);
                }
                _ => self.ready.push_back(e),
            }
        } else {
            let diff = t_tick ^ self.now_tick;
            let level = ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize;
            let shift = LEVEL_BITS * level as u32;
            let slot = ((t_tick >> shift) & SLOT_MASK) as usize;
            self.occupancy[level] |= 1 << slot;
            self.slots[level * SLOTS + slot].push(e);
        }
    }

    /// Advance the wheel to the next occupied slot: drain a level-0 slot
    /// into `ready`, or expand one higher-level slot downward.
    fn advance(&mut self) {
        for level in 0..LEVELS {
            let shift = LEVEL_BITS * level as u32;
            let pos = ((self.now_tick >> shift) & SLOT_MASK) as u32;
            // Slots at or after the current position. The slot *at* the
            // position is always empty (drained when the clock passed it),
            // so the mask never re-delivers.
            let occ = self.occupancy[level] & (!0u64 << pos);
            if occ == 0 {
                continue; // nothing left at this level's current rotation
            }
            let slot = occ.trailing_zeros() as usize;
            self.occupancy[level] &= !(1u64 << slot);
            // Absolute tick of the slot's start: keep the bits above this
            // level, substitute the slot index, zero everything below.
            let span = shift + LEVEL_BITS;
            let high = if span >= 64 { 0 } else { (self.now_tick >> span) << span };
            self.now_tick = high | ((slot as u64) << shift);
            let idx = level * SLOTS + slot;
            let mut batch =
                std::mem::replace(&mut self.slots[idx], std::mem::take(&mut self.scratch));
            if level == 0 {
                // One tick's events: restore exact sub-tick order. Keys
                // are unique, so the unstable sort is deterministic.
                batch.sort_unstable_by_key(|e| (e.time, e.lane));
                debug_assert!(self.ready.is_empty());
                self.ready.extend(batch.drain(..));
            } else {
                // Redistribute into lower levels (strictly descends:
                // every tick in the slot agrees with `now_tick` above
                // this level's bit group).
                self.cascaded += batch.len() as u64;
                for e in batch.drain(..) {
                    self.place(e);
                }
            }
            self.scratch = batch; // recycle the capacity
            return;
        }
        unreachable!("advance() called with events queued but no occupied slot");
    }

    fn ensure_ready(&mut self) {
        while self.ready.is_empty() && self.len > 0 {
            self.advance();
        }
    }
}

impl<T> EventQueue<T> for WheelQueue<T> {
    fn schedule(&mut self, at: SimTime, lane: u64, item: T) {
        self.scheduled += 1;
        self.len += 1;
        self.peak = self.peak.max(self.len);
        self.place(Entry { time: at, lane, item });
    }

    fn pop(&mut self) -> Option<(SimTime, T)> {
        self.ensure_ready();
        let e = self.ready.pop_front()?;
        self.len -= 1;
        Some((e.time, e.item))
    }

    fn next_time(&mut self) -> Option<SimTime> {
        self.ensure_ready();
        self.ready.front().map(|e| e.time)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            pending: self.len,
            peak_pending: self.peak,
            scheduled: self.scheduled,
            cascaded: self.cascaded,
            occupied_slots: self.occupancy.iter().map(|o| o.count_ones() as usize).sum(),
            ready: self.ready.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: f64) -> SimTime {
        SimTime::from_ms(ms)
    }

    fn drain<Q: EventQueue<u32>>(q: &mut Q) -> Vec<(SimTime, u32)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn wheel_orders_by_time_then_lane() {
        let mut q = WheelQueue::new();
        q.schedule(t(5.0), 0, 0);
        q.schedule(t(1.0), 1, 1);
        q.schedule(t(5.0), 2, 2);
        q.schedule(t(0.0), 3, 3);
        let order: Vec<u32> = drain(&mut q).into_iter().map(|(_, v)| v).collect();
        assert_eq!(order, [3, 1, 0, 2], "time order, lane order on ties");
        // Lanes invert the tie-break independently of schedule order.
        let mut q = WheelQueue::new();
        q.schedule(t(5.0), 9, 0);
        q.schedule(t(5.0), 2, 1);
        let order: Vec<u32> = drain(&mut q).into_iter().map(|(_, v)| v).collect();
        assert_eq!(order, [1, 0], "smaller lane fires first at equal time");
    }

    #[test]
    fn wheel_matches_heap_on_mixed_horizons() {
        // Timestamps spanning sub-tick spacing up to multi-level horizons
        // (0 ns … 10 min), interleaved with pops.
        let times_ms = [
            0.0, 0.000001, 0.0001, 0.07, 0.07, 1.0, 4.2, 4.2, 65.0, 300.0, 300.0, 4_000.0,
            17_000.0, 300_000.0, 600_000.0,
        ];
        let mut wheel = WheelQueue::new();
        let mut heap = HeapQueue::new();
        let mut w_out = Vec::new();
        let mut h_out = Vec::new();
        for (i, &ms) in times_ms.iter().enumerate() {
            wheel.schedule(t(ms), i as u64, i as u32);
            heap.schedule(t(ms), i as u64, i as u32);
            if i % 3 == 2 {
                w_out.extend(wheel.pop());
                h_out.extend(heap.pop());
            }
        }
        w_out.extend(drain(&mut wheel));
        h_out.extend(drain(&mut heap));
        assert_eq!(w_out, h_out);
    }

    #[test]
    fn zero_delay_insert_lands_after_equal_time_batch() {
        let mut q = WheelQueue::new();
        for i in 0..4 {
            q.schedule(t(2.0), u64::from(i), i);
        }
        assert_eq!(q.pop().map(|(_, v)| v), Some(0));
        // Scheduled mid-drain at the same instant with a larger lane:
        // fires after 1, 2, 3.
        q.schedule(t(2.0), 4, 99);
        let rest: Vec<u32> = drain(&mut q).into_iter().map(|(_, v)| v).collect();
        assert_eq!(rest, [1, 2, 3, 99]);
    }

    #[test]
    fn mid_drain_insert_with_smaller_lane_preempts_batch() {
        // A remote merge (or an actor with a smaller id) may insert an
        // equal-time event whose lane sorts *before* the rest of the
        // materialised batch; binary insertion must honour the key.
        let mut q = WheelQueue::new();
        for i in 0..3 {
            q.schedule(t(2.0), 10 + u64::from(i), i);
        }
        assert_eq!(q.pop().map(|(_, v)| v), Some(0));
        q.schedule(t(2.0), 5, 99);
        let rest: Vec<u32> = drain(&mut q).into_iter().map(|(_, v)| v).collect();
        assert_eq!(rest, [99, 1, 2]);
    }

    #[test]
    fn between_batch_insert_preempts_ready() {
        let mut q = WheelQueue::new();
        q.schedule(t(0.0), 0, 0);
        q.schedule(t(100.0), 1, 1);
        assert_eq!(q.pop().map(|(_, v)| v), Some(0));
        // next_time materialises the t=100 batch; an insert *between* the
        // popped time and the batch must still fire first.
        assert_eq!(q.next_time(), Some(t(100.0)));
        q.schedule(t(50.0), 2, 2);
        q.schedule(t(100.0), 3, 3);
        let rest: Vec<u32> = drain(&mut q).into_iter().map(|(_, v)| v).collect();
        assert_eq!(rest, [2, 1, 3]);
    }

    #[test]
    fn far_future_spans_all_levels() {
        // ~3.2 simulated years exercises the top wheel levels.
        let mut q = WheelQueue::new();
        q.schedule(SimTime::from_ms(1e11), 0, 0);
        q.schedule(t(0.5), 1, 1);
        let out = drain(&mut q);
        assert_eq!(out[0], (t(0.5), 1));
        assert_eq!(out[1], (SimTime::from_ms(1e11), 0));
        assert_eq!(q.stats().pending, 0);
    }

    #[test]
    fn max_time_is_representable() {
        let mut q = WheelQueue::new();
        q.schedule(SimTime::MAX, 0, 7);
        q.schedule(SimTime::ZERO, 1, 8);
        assert_eq!(q.next_time(), Some(SimTime::ZERO));
        let out = drain(&mut q);
        assert_eq!(out.last(), Some(&(SimTime::MAX, 7)));
    }

    #[test]
    fn stats_track_pending_and_cascades() {
        let mut q: WheelQueue<u32> = WheelQueue::new();
        for i in 0..10 {
            q.schedule(t(1_000.0 + f64::from(i)), u64::from(i), i); // beyond level 0 → cascades
        }
        assert_eq!(q.stats().pending, 10);
        assert_eq!(q.stats().scheduled, 10);
        let _ = drain(&mut q);
        let s = q.stats();
        assert_eq!(s.pending, 0);
        assert!(s.cascaded > 0, "ms-scale timers must cascade");
        assert_eq!(s.peak_pending, 10);
    }
}
