//! Scheduler-equivalence tests: the timer wheel must deliver **exactly**
//! the event order of the reference binary heap on any workload.
//!
//! The ordering contract (ascending `(time, lane)` with unique lanes) is
//! a total order, so the two queues have one correct answer —
//! these tests drive randomized workloads through both and assert
//! bit-identical delivery, both at the queue level (random schedule/pop
//! interleavings, clustered and far-flung timestamps) and at the
//! simulation level (a feedback actor whose every event deterministically
//! schedules more work, run once per scheduler).

use pbs_sim::{
    Actor, ActorId, Context, Event, EventQueue, HeapQueue, SimTime, Simulation, WheelQueue,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Queue-level equivalence on random schedule/pop interleavings.
// ---------------------------------------------------------------------------

/// One scripted action against both queues.
#[derive(Debug, Clone, Copy)]
enum Action {
    /// Schedule at `now + delta_ns` (deltas of 0 exercise equal-time FIFO).
    Schedule { delta_ns: u64 },
    /// Pop once from both queues and compare.
    Pop,
}

fn run_script(actions: &[Action]) {
    let mut wheel: WheelQueue<u32> = WheelQueue::new();
    let mut heap: HeapQueue<u32> = HeapQueue::new();
    // The "current time" mirrors a simulation clock: it only advances to
    // the time of the last popped event, and schedules are relative to it.
    let mut now = SimTime::ZERO;
    let mut id = 0u32;
    for action in actions {
        match *action {
            Action::Schedule { delta_ns } => {
                let at = SimTime::from_ms(now.as_ms() + delta_ns as f64 / 1e6);
                wheel.schedule(at, u64::from(id), id);
                heap.schedule(at, u64::from(id), id);
                id += 1;
            }
            Action::Pop => {
                let w = wheel.pop();
                let h = heap.pop();
                prop_assert_eq!(w, h, "pop diverged");
                if let Some((t, _)) = w {
                    now = t;
                }
            }
        }
    }
    // Drain the rest in lockstep.
    loop {
        prop_assert_eq!(wheel.next_time(), heap.next_time(), "peek diverged");
        let w = wheel.pop();
        let h = heap.pop();
        prop_assert_eq!(w, h, "drain diverged");
        if w.is_none() {
            break;
        }
    }
    prop_assert_eq!(wheel.len(), 0);
    prop_assert_eq!(heap.len(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Random interleavings of schedules and pops, with deltas spanning
    /// sub-tick (0–65 µs), slot-local, and multi-level horizons.
    #[test]
    fn wheel_matches_heap_on_random_interleavings(
        ops in prop::collection::vec((any::<u64>(), any::<u64>()), 1..200)
    ) {
        let actions: Vec<Action> = ops
            .iter()
            .map(|&(kind, raw)| {
                if kind % 4 == 0 {
                    Action::Pop
                } else {
                    // Bucket the raw delta into qualitatively different
                    // horizons: same-instant, sub-tick, ~ms, ~minute.
                    let delta_ns = match kind % 4 {
                        1 => raw % 3,                        // equal-time ties
                        2 => raw % 70_000,                   // within a tick
                        _ => raw % 60_000_000_000,           // up to a minute
                    };
                    Action::Schedule { delta_ns }
                }
            })
            .collect();
        run_script(&actions);
    }
}

// ---------------------------------------------------------------------------
// Simulation-level equivalence: a feedback workload on both schedulers.
// ---------------------------------------------------------------------------

/// An actor that logs every event and deterministically schedules
/// follow-up messages and timers from its own seeded RNG — events at
/// identical times, zero-delay sends, and multi-actor fan-out included.
struct Chaos {
    rng: StdRng,
    peers: usize,
    budget: u32,
    log: Vec<(u64, ActorId, u64)>,
}

impl Actor for Chaos {
    type Msg = u64;

    fn on_event(&mut self, ctx: &mut Context<'_, u64>, event: Event<u64>) {
        let payload = match event {
            Event::Message { msg, .. } => msg,
            Event::Timer { tag } => tag | 1 << 63,
        };
        self.log.push((ctx.now().as_nanos(), ctx.self_id(), payload));
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        let fanout = self.rng.gen_range(0..3u32);
        for _ in 0..fanout {
            let to = self.rng.gen_range(0..self.peers);
            // Mix zero delays (equal-time FIFO), sub-ms, and second-scale.
            let delay_ms = match self.rng.gen_range(0..4u32) {
                0 => 0.0,
                1 => self.rng.gen::<f64>() * 0.05,
                2 => self.rng.gen::<f64>() * 7.0,
                _ => self.rng.gen::<f64>() * 3_000.0,
            };
            ctx.send(to, delay_ms, payload.wrapping_add(self.budget as u64));
        }
        if self.rng.gen::<f64>() < 0.3 {
            ctx.set_timer(self.rng.gen::<f64>() * 500.0, self.budget as u64);
        }
    }
}

fn chaos_run<Q: EventQueue<(ActorId, Event<u64>)>>(seed: u64) -> Vec<(u64, ActorId, u64)> {
    let actors = 5usize;
    let mut sim: Simulation<Chaos, Q> = Simulation::with_queue(Q::default());
    for i in 0..actors {
        sim.add_actor(Chaos {
            rng: StdRng::seed_from_u64(seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9)),
            peers: actors,
            budget: 400,
            log: Vec::new(),
        });
    }
    for i in 0..actors {
        sim.inject(i, i as f64 * 0.25, i as u64);
    }
    sim.run_until_idle();
    let mut log = Vec::new();
    for i in 0..actors {
        log.extend(sim.actor(i).log.iter().copied());
    }
    // Merge per-actor logs into one global order by (time, actor, payload):
    // within one actor the log is already in delivery order, and the
    // comparison below is only meaningful if both runs order identically.
    log.sort_unstable();
    log
}

/// The full event loop produces bit-identical histories on the heap and
/// the wheel — the end-to-end witness that swapping the scheduler cannot
/// perturb any seeded run (`run_open_loop_sharded`'s bitwise-determinism
/// tests in `tests/open_loop.rs` assert the same at the workload level).
#[test]
fn simulation_histories_identical_across_schedulers() {
    for seed in [3, 17, 99, 2026] {
        let wheel = chaos_run::<WheelQueue<(ActorId, Event<u64>)>>(seed);
        let heap = chaos_run::<HeapQueue<(ActorId, Event<u64>)>>(seed);
        assert!(!wheel.is_empty(), "workload generated no events");
        assert_eq!(wheel, heap, "seed {seed}: scheduler changed the event history");
    }
}

/// Equal-time storms: thousands of events at the same instant must drain
/// in lane order on both queues.
#[test]
fn equal_time_storm_preserves_fifo() {
    let mut wheel: WheelQueue<u32> = WheelQueue::new();
    let mut heap: HeapQueue<u32> = HeapQueue::new();
    let t = SimTime::from_ms(1.5);
    for i in 0..5_000 {
        wheel.schedule(t, u64::from(i), i);
        heap.schedule(t, u64::from(i), i);
    }
    for expect in 0..5_000 {
        assert_eq!(wheel.pop(), Some((t, expect)));
        assert_eq!(heap.pop(), Some((t, expect)));
    }
}
