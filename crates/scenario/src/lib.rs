//! # pbs-scenario — closed-loop chaos scenarios for the PBS store
//!
//! §6 of the paper sketches *online* PBS: sample WARS latencies from a
//! live cluster, refit, and retune `(N, R, W)` as conditions drift. This
//! crate closes that loop end-to-end on the simulated store:
//!
//! * [`Scenario`] — a declarative, seeded timeline: a cluster + network
//!   baseline, a piecewise (nonstationary) probe-load schedule reusing
//!   `pbs_workload::arrivals`, and timed fault [`event`]s — latency
//!   regime swaps, per-leg scaling, node crash/recover, network
//!   partitions, and per-link degradations, all applied to a **running**
//!   cluster through `pbs-kvs`'s dynamic `NetworkModel` conditions.
//! * [`run_scenario`] — the closed-loop driver: write→read probes labelled
//!   against ground truth, with an in-loop
//!   [`AdaptiveController`](pbs_predictor::AdaptiveController) that drains
//!   the cluster's measured leg samples on a cadence, refits, predicts the
//!   current configuration's consistency, and (when the scenario is
//!   adaptive) applies the SLA optimizer's winning configuration live via
//!   `Cluster::set_replication`.
//! * [`run_scenario_sharded`] — whole-scenario replication on the
//!   deterministic `pbs-mc` runner: `trials` independent runs shard
//!   across threads and their windowed time-series merge, giving
//!   confidence intervals that are bit-reproducible for a fixed
//!   `(seed, threads)` pair.
//!
//! The output is a windowed time-series ([`ScenarioRun`]) of predicted
//! vs. measured consistency, latency summaries, availability losses, and
//! applied reconfigurations — regenerate it from the CLI with
//! `cargo run --release --bin scenarios -- --scenario latency-spike`.
//!
//! Scenarios compose with the buggify layer: a seeded
//! [`FaultProfile`](pbs_kvs::FaultProfile) can be installed for the whole
//! run (`Scenario::fault_profile`) or injected/cleared mid-timeline
//! ([`ScenarioEvent::InjectFaults`]/`ClearFaults`), and `check_history`
//! runs the offline [`checker`](pbs_kvs::checker) as a post-pass — the
//! verdict lands in [`ScenarioRun::check`].
//!
//! Four built-in scenarios ship with the crate: `diurnal-load` (a
//! repeating day/night load cycle), `latency-spike` (a write-leg regime
//! shift and recovery), `rolling-partition` (each node isolated in
//! turn), and `buggify-storm` (every buggify fault at once, with the
//! checker post-pass). See [`Scenario::by_name`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod event;
pub mod scenario;

pub use driver::{run_scenario, run_scenario_sharded, ReconfigRecord, ScenarioRun, WindowRecord};
pub use event::{apply_event, ScenarioEvent, TimedEvent};
pub use scenario::{ControlOptions, Scenario};
