//! Declarative scenario definitions and the built-in scenario library.

use crate::event::{ScenarioEvent, TimedEvent};
use pbs_core::ReplicaConfig;
use pbs_dist::Exponential;
use pbs_kvs::{ClusterOptions, FaultProfile, FaultSchedule, NetworkModel};
use pbs_predictor::SlaSpec;
use std::sync::Arc;

/// Closed-loop controller settings for a scenario run.
#[derive(Debug, Clone)]
pub struct ControlOptions {
    /// How often the driver drains leg samples and refits (ms).
    pub refit_interval_ms: f64,
    /// Minimum per-leg window fill before the first refit is attempted.
    pub min_samples: usize,
    /// Sliding-window capacity per WARS leg.
    pub window: usize,
    /// Monte-Carlo trials per candidate evaluation.
    pub mc_trials: usize,
    /// Whether the controller's best configuration is **applied** to the
    /// live cluster (`false` = observe/predict only).
    pub adaptive: bool,
    /// The SLA the optimizer targets when `adaptive`.
    pub spec: SlaSpec,
    /// Candidate replication factors for the optimizer.
    pub candidate_ns: Vec<u32>,
}

impl ControlOptions {
    /// Sensible defaults for the built-in scenarios: refit every 1.5 s
    /// over a 1 000-sample window, 3 000 MC trials per candidate,
    /// adaptive reconfiguration on, targeting 90% consistency within
    /// 10 ms.
    pub fn default_for(candidate_ns: Vec<u32>) -> Self {
        Self {
            refit_interval_ms: 1_500.0,
            min_samples: 300,
            window: 1_000,
            mc_trials: 3_000,
            adaptive: true,
            spec: SlaSpec::consistency(0.9, 10.0),
            candidate_ns,
        }
    }
}

/// A declarative, seeded chaos scenario: a cluster + network baseline, a
/// (possibly nonstationary) probe-load timeline, a list of timed fault
/// events, and closed-loop controller settings.
///
/// Run one with [`crate::run_scenario`] or replicate it for confidence
/// intervals with [`crate::run_scenario_sharded`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (`Scenario::by_name` key).
    pub name: String,
    /// One-line description for harness output.
    pub description: String,
    /// Cluster options (the driver overrides `seed` per run and forces
    /// `record_leg_samples`).
    pub cluster: ClusterOptions,
    /// Baseline network (cloned — i.e. forked — per run).
    pub network: NetworkModel,
    /// Piecewise probe load: `(start_ms, probes per second)` segments.
    pub load: Vec<(f64, f64)>,
    /// Optional load period (ms) — the load timeline repeats (diurnal).
    pub load_period_ms: Option<f64>,
    /// Fault timeline, sorted by time.
    pub events: Vec<TimedEvent>,
    /// Total simulated duration (ms).
    pub duration_ms: f64,
    /// Reporting window width (ms).
    pub window_ms: f64,
    /// Probe read offset: each probe reads this many ms after its write's
    /// commit (`t` in the paper's t-visibility).
    pub probe_offset_ms: f64,
    /// Keyspace size for probe keys.
    pub keys: u64,
    /// Segments `(start_ms, end_ms)` on which conditions are stationary
    /// and the refit window has converged — where adaptive predictions
    /// are expected to track measurements (used by tests and the harness
    /// summary).
    pub stationary: Vec<(f64, f64)>,
    /// Closed-loop controller settings.
    pub control: ControlOptions,
    /// Buggify fault profile installed from scenario start (timelines can
    /// also [`ScenarioEvent::InjectFaults`]/`ClearFaults` mid-run).
    pub fault_profile: Option<FaultProfile>,
    /// Time-varying buggify schedule installed from scenario start
    /// (ramps, bursts, calm→storm→calm). Mutually exclusive with
    /// `fault_profile` — a constant profile is just a one-segment
    /// schedule.
    pub fault_schedule: Option<FaultSchedule>,
    /// Record the full op history and run the offline checker as a
    /// post-pass (session replay vs. streaming counters, label recount).
    pub check_history: bool,
    /// Also audit post-settle replica convergence. Only meaningful when
    /// the timeline clears every fault long enough before the end for
    /// repair traffic to land.
    pub check_convergence: bool,
}

impl Scenario {
    fn baseline(name: &str, description: &str, seed: u64) -> Self {
        let cfg = ReplicaConfig::new(3, 1, 1).expect("valid");
        let mut cluster = ClusterOptions::validation(cfg, seed);
        // Probes must not warp time past in-flight faults on failure.
        cluster.op_timeout_ms = 400.0;
        cluster.record_leg_samples = true;
        // Disk-like writes (mean 6 ms) against fast A=R=S legs (mean
        // 1.5 ms): mid-range immediate consistency, so both improvements
        // and regressions are visible.
        let network = NetworkModel::w_ars(
            Arc::new(Exponential::from_mean(6.0)),
            Arc::new(Exponential::from_mean(1.5)),
        );
        Self {
            name: name.into(),
            description: description.into(),
            cluster,
            network,
            load: vec![(0.0, 70.0)],
            load_period_ms: None,
            events: Vec::new(),
            duration_ms: 16_000.0,
            window_ms: 1_000.0,
            probe_offset_ms: 0.0,
            keys: 16,
            stationary: Vec::new(),
            control: ControlOptions::default_for(vec![3]),
            fault_profile: None,
            fault_schedule: None,
            check_history: false,
            check_convergence: false,
        }
    }

    /// Built-in: a repeating day/night load curve. Peak traffic refits on
    /// dense samples; the trough shows how prediction confidence degrades
    /// when the store goes quiet. Conditions are otherwise stationary, so
    /// predictions should track measurements throughout (after the first
    /// refit).
    pub fn diurnal_load(seed: u64) -> Self {
        let mut s = Self::baseline(
            "diurnal-load",
            "day/night load cycle over a stationary network; predictions should track",
            seed,
        );
        s.load = vec![(0.0, 90.0), (4_000.0, 25.0)];
        s.load_period_ms = Some(8_000.0);
        s.duration_ms = 16_000.0;
        s.stationary = vec![(4_000.0, 16_000.0)];
        s
    }

    /// Built-in: a latency-regime spike. At 6 s the write leg degrades to
    /// a 30 ms mean (fsync storms / compaction); at 10 s it recovers. The
    /// adaptive controller tightens quorums during the spike and relaxes
    /// after; the pre-spike and late post-recovery segments are
    /// stationary.
    pub fn latency_spike(seed: u64) -> Self {
        let mut s = Self::baseline(
            "latency-spike",
            "write-leg regime spike at 6s, recovery at 10s; adaptive quorums tighten and relax",
            seed,
        );
        let slow_w: pbs_dist::DynDistribution = Arc::new(Exponential::from_mean(30.0));
        let ars: pbs_dist::DynDistribution = Arc::new(Exponential::from_mean(1.5));
        s.events = vec![
            TimedEvent::new(
                6_000.0,
                ScenarioEvent::SwapRegime {
                    w: slow_w,
                    a: ars.clone(),
                    r: ars.clone(),
                    s: ars,
                },
            ),
            TimedEvent::new(10_000.0, ScenarioEvent::RestoreBaseline),
        ];
        s.duration_ms = 22_000.0;
        // Pre-spike after first refits; post-recovery after the sliding
        // window has fully rolled past spike-era samples.
        s.stationary = vec![(3_000.0, 6_000.0), (16_000.0, 22_000.0)];
        s
    }

    /// Built-in: a rolling one-node partition — each node is isolated for
    /// 2 s in turn (a rolling restart / rolling network maintenance).
    /// Availability and consistency dip while a probe's coordinator or
    /// replicas sit on the wrong side; the tail after the last heal is
    /// stationary.
    pub fn rolling_partition(seed: u64) -> Self {
        let mut s = Self::baseline(
            "rolling-partition",
            "each node isolated for 2s in turn; consistency dips per wave (predictions are blind to partitions)",
            seed,
        );
        let mut events = Vec::new();
        for (i, at) in [4_000.0f64, 8_000.0, 12_000.0].iter().enumerate() {
            let mut groups = vec![0u32; 3];
            groups[i] = 1; // isolate node i
            events.push(TimedEvent::new(*at, ScenarioEvent::Partition { groups }));
            events.push(TimedEvent::new(at + 2_000.0, ScenarioEvent::HealPartition));
        }
        s.events = events;
        s.duration_ms = 20_000.0;
        s.stationary = vec![(3_000.0, 4_000.0)];
        // Reconfiguration cannot route around a partition here (every node
        // is a replica at N=3); observe/predict only.
        s.control.adaptive = false;
        s
    }

    /// Built-in: a buggify storm — seeded message drops, duplicates,
    /// bounded reordering, slow nodes, disk lag, and per-node clock drift
    /// all at once, cleared at 12 s so the tail shows recovery. The
    /// offline history checker runs as a post-pass: under faults the
    /// session guarantees *will* be violated; the acceptance criterion is
    /// that the streaming counters and the offline replay agree on every
    /// violation, and that no online staleness label is mismatched.
    pub fn buggify_storm(seed: u64) -> Self {
        let mut s = Self::baseline(
            "buggify-storm",
            "full fault storm until 12s (drops, dups, reorder, slow nodes, disk lag, clock skew); history checker post-pass",
            seed,
        );
        s.fault_profile = Some(FaultProfile::storm(seed));
        s.events = vec![TimedEvent::new(12_000.0, ScenarioEvent::ClearFaults)];
        s.duration_ms = 16_000.0;
        s.check_history = true;
        // Predictions are blind to buggify faults (drops aren't latency);
        // observe only, don't let the optimizer thrash on them.
        s.control.adaptive = false;
        s
    }

    /// Built-in: a scheduled calm→storm→calm message-fault window (3–9 s)
    /// with two node crashes inside it — the adversarial audit shape. The
    /// cluster runs every healing mechanism (hinted handoff, read repair,
    /// merkle anti-entropy), so the post-storm tail must fully converge;
    /// the history checker post-pass audits sessions, labels, per-key
    /// order, and final-state convergence.
    pub fn crash_storm(seed: u64) -> Self {
        let mut s = Self::baseline(
            "crash-storm",
            "scheduled fault storm 3-9s with two crashes inside; hints/repair/anti-entropy must reconverge the tail",
            seed,
        );
        // Message faults only: drops, duplicates, bounded reordering. Disk
        // lag / slow nodes / clock drift are exercised by buggify-storm;
        // here the calm tail must be genuinely calm so the convergence
        // audit is meaningful.
        let storm = FaultProfile::new(seed)
            .with_drop(0.12)
            .with_duplicate(0.08)
            .with_reorder(0.1, 4.0);
        s.fault_schedule = Some(FaultSchedule::calm_storm_calm(storm, 3_000.0, 9_000.0));
        s.cluster.read_repair = true;
        s.cluster.hinted_handoff = true;
        s.cluster.hint_timeout_ms = 100.0;
        s.cluster.hint_flush_interval_ms = 250.0;
        s.cluster.sync_interval_ms = Some(2_000.0);
        s.events = vec![
            TimedEvent::new(4_000.0, ScenarioEvent::Crash { node: 1, down_ms: 1_500.0 }),
            TimedEvent::new(6_500.0, ScenarioEvent::Crash { node: 2, down_ms: 1_500.0 }),
        ];
        s.duration_ms = 16_000.0;
        s.check_history = true;
        s.check_convergence = true;
        // Predictions are blind to drops; observe only.
        s.control.adaptive = false;
        s
    }

    /// Look up a built-in scenario by name.
    pub fn by_name(name: &str, seed: u64) -> Option<Self> {
        match name {
            "diurnal-load" => Some(Self::diurnal_load(seed)),
            "latency-spike" => Some(Self::latency_spike(seed)),
            "rolling-partition" => Some(Self::rolling_partition(seed)),
            "buggify-storm" => Some(Self::buggify_storm(seed)),
            "crash-storm" => Some(Self::crash_storm(seed)),
            _ => None,
        }
    }

    /// Names of the built-in scenarios.
    pub fn builtin_names() -> &'static [&'static str] {
        &["diurnal-load", "latency-spike", "rolling-partition", "buggify-storm", "crash-storm"]
    }

    /// Number of reporting windows.
    pub fn window_count(&self) -> usize {
        (self.duration_ms / self.window_ms).ceil() as usize
    }

    /// Validate cross-field invariants (called by the driver).
    pub fn validate(&self) {
        assert!(self.duration_ms > 0.0 && self.window_ms > 0.0);
        assert!(self.probe_offset_ms >= 0.0);
        assert!(self.keys > 0);
        assert!(!self.load.is_empty());
        for pair in self.events.windows(2) {
            assert!(
                pair[0].at_ms <= pair[1].at_ms,
                "events must be sorted by time: {} after {}",
                pair[0].at_ms,
                pair[1].at_ms
            );
        }
        for &(a, b) in &self.stationary {
            assert!(a < b && b <= self.duration_ms, "bad stationary segment ({a}, {b})");
        }
        for &n in &self.control.candidate_ns {
            assert!(
                n <= self.cluster.nodes,
                "candidate N={n} exceeds the cluster's {} nodes — an adaptive \
                 reconfiguration to it would fail mid-run",
                self.cluster.nodes
            );
        }
        if let Some(profile) = &self.fault_profile {
            profile.validate().expect("scenario fault profile is invalid");
        }
        if let Some(schedule) = &self.fault_schedule {
            schedule.validate().expect("scenario fault schedule is invalid");
            assert!(
                self.fault_profile.is_none(),
                "set either fault_profile or fault_schedule, not both (a constant \
                 profile is a one-segment schedule)"
            );
        }
        assert!(
            !self.check_convergence || self.check_history,
            "check_convergence requires check_history (the checker post-pass)"
        );
    }
}
