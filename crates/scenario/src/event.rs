//! The scenario event vocabulary: everything a fault/load timeline can do
//! to a running cluster.

use pbs_dist::DynDistribution;
use pbs_kvs::{Cluster, FaultProfile, FaultSchedule, LinkFault};
use pbs_sim::SimTime;

/// One dynamic condition change. Events are interpreted by
/// [`apply_event`] against a live [`Cluster`]; each takes effect at the
/// simulated instant it is applied (in-flight messages keep the
/// conditions they were sent under).
#[derive(Clone)]
pub enum ScenarioEvent {
    /// Crash `node` for `down_ms` (state wiped iff the cluster's
    /// `wipe_on_crash` is set).
    Crash {
        /// Node to crash.
        node: usize,
        /// Downtime in ms.
        down_ms: f64,
    },
    /// Install a network partition: `groups[node]` is each node's side;
    /// cross-group messages are dropped.
    Partition {
        /// Partition group per node.
        groups: Vec<u32>,
    },
    /// Remove the partition.
    HealPartition,
    /// Degrade one directed link (see [`LinkFault`]).
    DegradeLink(LinkFault),
    /// Remove every link fault.
    ClearLinkFaults,
    /// Swap the active per-leg latency distributions — a latency *regime*
    /// change (e.g. SSD-like service times degrade to disk-like tails).
    SwapRegime {
        /// Write-propagation leg.
        w: DynDistribution,
        /// Write-ack leg.
        a: DynDistribution,
        /// Read-request leg.
        r: DynDistribution,
        /// Read-response leg.
        s: DynDistribution,
    },
    /// Scale the active legs by per-leg factors (absolute, not
    /// cumulative).
    ScaleLegs {
        /// W factor.
        w: f64,
        /// A factor.
        a: f64,
        /// R factor.
        r: f64,
        /// S factor.
        s: f64,
    },
    /// Drop any regime swap / leg scaling, returning to the base network.
    RestoreBaseline,
    /// Install (or replace) a buggify [`FaultProfile`] — seeded message
    /// drops/duplicates/reordering, slow nodes, disk lag, and clock skew.
    InjectFaults(FaultProfile),
    /// Install (or replace) a time-varying [`FaultSchedule`] — piecewise
    /// fault intensity (ramps, bursts, calm→storm→calm) evaluated at each
    /// message's send time. Segment times are absolute simulated ms, not
    /// relative to this event.
    InjectSchedule(FaultSchedule),
    /// Remove the buggify fault profile (messages flow cleanly again; the
    /// usual precondition for a meaningful convergence check).
    ClearFaults,
}

impl ScenarioEvent {
    /// Short human-readable description for timelines and logs.
    pub fn describe(&self) -> String {
        match self {
            ScenarioEvent::Crash { node, down_ms } => {
                format!("crash node {node} for {down_ms}ms")
            }
            ScenarioEvent::Partition { groups } => format!("partition {groups:?}"),
            ScenarioEvent::HealPartition => "heal partition".into(),
            ScenarioEvent::DegradeLink(f) => format!(
                "degrade link {}→{} (×{} +{}ms)",
                f.from, f.to, f.scale, f.extra_ms
            ),
            ScenarioEvent::ClearLinkFaults => "clear link faults".into(),
            ScenarioEvent::SwapRegime { w, a, r, s } => format!(
                "swap regime W={} A={} R={} S={}",
                w.describe(),
                a.describe(),
                r.describe(),
                s.describe()
            ),
            ScenarioEvent::ScaleLegs { w, a, r, s } => {
                format!("scale legs W×{w} A×{a} R×{r} S×{s}")
            }
            ScenarioEvent::RestoreBaseline => "restore baseline network".into(),
            ScenarioEvent::InjectFaults(p) => format!(
                "inject faults (drop {} dup {} reorder {} slow {} disk-lag {} drift {})",
                p.drop_prob,
                p.duplicate_prob,
                p.reorder_prob,
                p.slow_node_frac,
                p.disk_lag_prob,
                p.clock_drift_max
            ),
            ScenarioEvent::InjectSchedule(s) => {
                format!("inject fault schedule ({} segments)", s.segments().len())
            }
            ScenarioEvent::ClearFaults => "clear fault profile".into(),
        }
    }
}

impl std::fmt::Debug for ScenarioEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ScenarioEvent({})", self.describe())
    }
}

/// An event pinned to an absolute scenario time.
#[derive(Debug, Clone)]
pub struct TimedEvent {
    /// When the event fires (ms from scenario start).
    pub at_ms: f64,
    /// What happens.
    pub event: ScenarioEvent,
}

impl TimedEvent {
    /// Construct a timed event.
    pub fn new(at_ms: f64, event: ScenarioEvent) -> Self {
        assert!(at_ms >= 0.0 && at_ms.is_finite());
        Self { at_ms, event }
    }
}

/// Apply one event to a live cluster **at the cluster's current simulated
/// time**. Drivers advance the cluster to the event's `at_ms` before
/// calling this, so the event takes effect at the scheduled `SimTime` —
/// except when a blocking probe already ran past `at_ms`, in which case it
/// applies as soon as that probe completes (see
/// [`run_scenario`](crate::run_scenario)'s clock policy).
///
/// Malformed events — a partition whose `groups` doesn't cover the
/// cluster, a crash of a nonexistent node, a non-finite link fault, an
/// invalid fault profile — are rejected with a description instead of
/// panicking mid-run or being silently reshaped (the old `partition`
/// path folded out-of-range nodes into group 0).
pub fn apply_event(cluster: &mut Cluster, event: &ScenarioEvent) -> Result<(), String> {
    match event {
        ScenarioEvent::Crash { node, down_ms } => {
            if *node >= cluster.node_count() {
                return Err(format!(
                    "cannot crash node {node}: cluster has {} nodes",
                    cluster.node_count()
                ));
            }
            let now: SimTime = cluster.now();
            cluster.crash_node_at(*node, now, *down_ms);
        }
        ScenarioEvent::Partition { groups } => {
            let nodes = cluster.node_count();
            cluster
                .network()
                .try_partition(groups.clone(), nodes)
                .map_err(|e| e.to_string())?;
        }
        ScenarioEvent::HealPartition => cluster.network().heal_partition(),
        ScenarioEvent::DegradeLink(fault) => {
            cluster.network().add_link_fault(*fault).map_err(|e| e.to_string())?;
        }
        ScenarioEvent::ClearLinkFaults => cluster.network().clear_link_faults(),
        ScenarioEvent::SwapRegime { w, a, r, s } => {
            cluster.network().swap_legs(w.clone(), a.clone(), r.clone(), s.clone());
        }
        ScenarioEvent::ScaleLegs { w, a, r, s } => {
            cluster.network().set_leg_scale(*w, *a, *r, *s);
        }
        ScenarioEvent::RestoreBaseline => cluster.network().restore_base_legs(),
        ScenarioEvent::InjectFaults(profile) => {
            cluster.network().set_fault_profile(*profile).map_err(|e| e.to_string())?;
        }
        ScenarioEvent::InjectSchedule(schedule) => {
            cluster.network().set_fault_schedule(schedule.clone()).map_err(|e| e.to_string())?;
        }
        ScenarioEvent::ClearFaults => cluster.network().clear_fault_profile(),
    }
    Ok(())
}
