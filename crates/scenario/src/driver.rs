//! The scenario driver: runs a live cluster through a scenario's
//! fault/load timeline **under open-loop probe load** while an in-loop
//! [`AdaptiveController`] consumes drained leg samples, refits on a
//! cadence, and (optionally) applies reconfigurations — emitting a
//! windowed time-series of predicted vs. measured consistency and
//! latency.
//!
//! Probes ride the open-loop engine: an in-sim client actor pulls write
//! arrivals from the scenario's piecewise load, and each committed write
//! schedules a read of the same key `probe_offset_ms` after its commit
//! (the §5.2 probe pair). Probes overlap freely — a timed-out operation
//! no longer blocks the simulation, so fault events, refits, and windows
//! all fire at their exact scheduled instants and reads are labelled
//! online as the commit watermark passes each window boundary.

use crate::event::apply_event;
use crate::scenario::Scenario;
use pbs_core::ReplicaConfig;
use pbs_kvs::{checker, CheckReport, ClientOptions, Cluster, WindowDrain, WindowOp};
use pbs_mc::{Mergeable, Runner, Summary};
use pbs_predictor::AdaptiveController;
use pbs_sim::SimTime;
use pbs_workload::{OpMix, OpStream, PiecewisePoisson, UniformKeys};

/// One reporting window of a scenario run (counts sum and sketches merge
/// across replicated runs).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRecord {
    /// Window start (ms from scenario start).
    pub start_ms: f64,
    /// Window end (ms).
    pub end_ms: f64,
    /// Probes whose write committed and whose read completed.
    pub probes: u64,
    /// Probes whose read was consistent (ground truth).
    pub consistent: u64,
    /// Sum of the in-force predicted `P(consistent)` over probes that had
    /// a prediction available.
    pub predicted_sum: f64,
    /// Number of probes contributing to `predicted_sum`.
    pub predicted_count: u64,
    /// Probe writes that failed to commit (availability loss).
    pub failed_writes: u64,
    /// Probe reads that timed out.
    pub incomplete_reads: u64,
    /// Commit latencies of successful probe writes (ms).
    pub write_latency: Summary,
    /// Latencies of completed probe reads (ms).
    pub read_latency: Summary,
    /// Reconfigurations the controller applied in this window.
    pub reconfigs: u64,
}

impl WindowRecord {
    fn new(start_ms: f64, end_ms: f64) -> Self {
        Self {
            start_ms,
            end_ms,
            probes: 0,
            consistent: 0,
            predicted_sum: 0.0,
            predicted_count: 0,
            failed_writes: 0,
            incomplete_reads: 0,
            write_latency: Summary::new(),
            read_latency: Summary::new(),
            reconfigs: 0,
        }
    }

    /// Measured `P(consistent)` in this window (`None` with no probes).
    pub fn measured(&self) -> Option<f64> {
        (self.probes > 0).then(|| self.consistent as f64 / self.probes as f64)
    }

    /// Mean predicted `P(consistent)` in force during this window
    /// (`None` before the controller's first refit).
    pub fn predicted(&self) -> Option<f64> {
        (self.predicted_count > 0).then(|| self.predicted_sum / self.predicted_count as f64)
    }

    /// `|predicted − measured|`, when both exist.
    pub fn tracking_error(&self) -> Option<f64> {
        Some((self.predicted()? - self.measured()?).abs())
    }
}

impl Mergeable for WindowRecord {
    fn merge(&mut self, other: Self) {
        assert_eq!(self.start_ms, other.start_ms, "window grids differ");
        self.probes += other.probes;
        self.consistent += other.consistent;
        self.predicted_sum += other.predicted_sum;
        self.predicted_count += other.predicted_count;
        self.failed_writes += other.failed_writes;
        self.incomplete_reads += other.incomplete_reads;
        self.write_latency.merge(other.write_latency);
        self.read_latency.merge(other.read_latency);
        self.reconfigs += other.reconfigs;
    }
}

/// One reconfiguration the in-loop controller applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigRecord {
    /// When it was applied (ms from scenario start).
    pub at_ms: f64,
    /// Seed of the replica run that applied it.
    pub run_seed: u64,
    /// Configuration before.
    pub from: ReplicaConfig,
    /// Configuration after.
    pub to: ReplicaConfig,
}

/// The merged result of one or more replicated runs of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRun {
    /// Scenario name.
    pub name: String,
    /// Windowed time-series.
    pub windows: Vec<WindowRecord>,
    /// Every reconfiguration across every replica run, in merge order.
    pub reconfigs: Vec<ReconfigRecord>,
    /// Offline checker verdict (when the scenario sets `check_history`),
    /// merged across replica runs.
    pub check: Option<CheckReport>,
    /// Timeline events the cluster rejected as malformed (bad partition
    /// grouping, non-finite link fault, invalid fault profile, …).
    pub event_errors: u64,
    /// Replica runs folded into this result.
    pub runs: u64,
}

impl ScenarioRun {
    fn empty(scenario: &Scenario) -> Self {
        let windows = (0..scenario.window_count())
            .map(|i| {
                let start = i as f64 * scenario.window_ms;
                WindowRecord::new(start, (start + scenario.window_ms).min(scenario.duration_ms))
            })
            .collect();
        Self {
            name: scenario.name.clone(),
            windows,
            reconfigs: Vec::new(),
            check: None,
            event_errors: 0,
            runs: 0,
        }
    }

    /// Largest `|predicted − measured|` over windows that lie entirely
    /// inside the scenario's declared stationary segments (`None` when no
    /// such window has both series) — the acceptance metric for
    /// closed-loop prediction quality.
    pub fn stationary_tracking_error(&self, scenario: &Scenario) -> Option<f64> {
        self.windows
            .iter()
            .filter(|w| {
                scenario
                    .stationary
                    .iter()
                    .any(|&(a, b)| w.start_ms >= a && w.end_ms <= b)
            })
            .filter_map(WindowRecord::tracking_error)
            .max_by(|a, b| a.partial_cmp(b).expect("errors are not NaN"))
    }
}

impl Mergeable for ScenarioRun {
    fn merge(&mut self, other: Self) {
        if other.runs == 0 {
            return;
        }
        if self.runs == 0 {
            *self = other;
            return;
        }
        assert_eq!(self.windows.len(), other.windows.len(), "window grids differ");
        for (a, b) in self.windows.iter_mut().zip(other.windows) {
            a.merge(b);
        }
        self.reconfigs.extend(other.reconfigs);
        self.check = match (self.check.take(), other.check) {
            (Some(mut a), Some(b)) => {
                a.merge(b);
                Some(a)
            }
            (a, b) => a.or(b),
        };
        self.event_errors += other.event_errors;
        self.runs += other.runs;
    }
}

fn advance(cluster: &mut Cluster, to_ms: f64) {
    let target = SimTime::from_ms(to_ms);
    if target > cluster.now() {
        cluster.advance_to(target);
    }
}

/// The prediction in force over time: a step function of
/// `(from_ms, P(consistent at probe offset))` appended at each successful
/// refit. Probes look up the step at their read's start.
#[derive(Debug, Default)]
struct PredictionSteps {
    steps: Vec<(f64, f64)>,
}

impl PredictionSteps {
    fn push(&mut self, from_ms: f64, p: f64) {
        self.steps.push((from_ms, p));
    }

    fn at(&self, t_ms: f64) -> Option<f64> {
        self.steps.iter().rev().find(|&&(from, _)| from <= t_ms).map(|&(_, p)| p)
    }
}

/// Fold one window drain into the run's window grid. Window attribution
/// (by op start, clamped — reads of writes committing near the end of
/// the run may start past `duration`) is [`WindowDrain::fold`]'s, shared
/// with the engine reports.
fn fold_drain(
    out: &mut ScenarioRun,
    window_ms: f64,
    drain: &WindowDrain,
    predictions: &PredictionSteps,
) {
    let last = out.windows.len() - 1;
    drain.fold(window_ms, last, |idx, item| {
        let win = &mut out.windows[idx];
        match item {
            WindowOp::Write(w) => match w.commit {
                Some(_) => {
                    let latency = (w.finish.expect("committed") - w.start).as_ms();
                    win.write_latency.record(latency);
                }
                None => win.failed_writes += 1,
            },
            WindowOp::Read(r) => match r.label {
                None => win.incomplete_reads += 1,
                Some(label) => {
                    let latency = (r.op.finish.expect("labelled") - r.op.start).as_ms();
                    win.read_latency.record(latency);
                    win.probes += 1;
                    if label.consistent {
                        win.consistent += 1;
                    }
                    if let Some(p) = predictions.at(r.op.start.as_ms()) {
                        win.predicted_sum += p;
                        win.predicted_count += 1;
                    }
                }
            },
        }
    });
}

/// Run one replica of `scenario`, seeded by `run_seed`.
///
/// The driver runs the **open-loop engine**: an in-sim probe client pulls
/// write arrivals from the scenario's piecewise load and schedules a read
/// of the same key `probe_offset_ms` after each commit. The loop then
/// interleaves three exact clocks in simulated-time order — fault events,
/// the controller's refit cadence, and window drains. Each refit drains
/// the cluster's measured one-way WARS samples into the controller,
/// re-predicts the current configuration, and — when the scenario is
/// adaptive — applies the SLA optimizer's winning configuration to the
/// live cluster. Each window drain advances the online ground-truth
/// watermark and labels the probes that completed in the window.
///
/// Because probes no longer block the simulation, a timed-out operation
/// cannot delay an event or refit past its scheduled instant, and load
/// shedding only occurs at the client's in-flight cap (a genuinely
/// overloaded store), not from clock divergence.
pub fn run_scenario(scenario: &Scenario, run_seed: u64) -> ScenarioRun {
    scenario.validate();
    let mut opts = scenario.cluster;
    opts.seed = run_seed;
    opts.record_leg_samples = true;
    let mut cluster = Cluster::new(opts, scenario.network.clone());
    if let Some(profile) = scenario.fault_profile {
        cluster
            .network()
            .set_fault_profile(profile)
            .expect("scenario.validate() vouched for the profile");
    }
    if let Some(schedule) = &scenario.fault_schedule {
        cluster
            .network()
            .set_fault_schedule(schedule.clone())
            .expect("scenario.validate() vouched for the schedule");
    }
    if scenario.check_history {
        cluster.enable_history();
    }

    let control = &scenario.control;
    let mut ctl = AdaptiveController::new(
        control.spec,
        control.candidate_ns.clone(),
        control.window,
        control.mc_trials,
        run_seed ^ 0xada9_71c0_1175_0c5e,
    )
    .with_threads(1);

    // Probe load: per-second rates → per-ms rates, pulled lazily by the
    // in-sim probe client (writes only; reads ride the probe offset).
    let segments: Vec<(f64, f64)> =
        scenario.load.iter().map(|&(start, per_s)| (start, per_s / 1000.0)).collect();
    let load = match scenario.load_period_ms {
        Some(p) => PiecewisePoisson::cyclic(segments, p),
        None => PiecewisePoisson::new(segments),
    };
    let source = OpStream::new(load, UniformKeys::new(scenario.keys), OpMix::writes_only(), 1);
    cluster.add_client(
        Box::new(source),
        ClientOptions {
            op_timeout_ms: opts.op_timeout_ms,
            max_in_flight: 4_096,
            probe_read_offset_ms: Some(scenario.probe_offset_ms),
            result_capacity: 1 << 16,
        },
    );
    cluster.start_clients();

    let mut out = ScenarioRun::empty(scenario);
    out.runs = 1;
    let last_window = out.windows.len() - 1;
    let window_index = |at_ms: f64| -> usize {
        ((at_ms / scenario.window_ms) as usize).min(last_window)
    };

    let mut ev_idx = 0usize;
    let mut next_refit = control.refit_interval_ms;
    let mut next_window = scenario.window_ms;
    let mut current_cfg = opts.replication;
    let mut predictions = PredictionSteps::default();

    loop {
        let ev_at = scenario.events.get(ev_idx).map(|e| e.at_ms).unwrap_or(f64::INFINITY);
        let t = ev_at.min(next_refit).min(next_window);
        if t >= scenario.duration_ms {
            break;
        }
        if ev_at <= t {
            advance(&mut cluster, ev_at);
            // A malformed event is counted, not fatal: the rest of the
            // timeline (and the checker post-pass) still runs.
            if apply_event(&mut cluster, &scenario.events[ev_idx].event).is_err() {
                out.event_errors += 1;
            }
            ev_idx += 1;
            continue;
        }
        if next_refit <= t {
            let refit_at = next_refit;
            advance(&mut cluster, refit_at);
            let legs = cluster.drain_leg_samples();
            ctl.observe_many(&legs.w, &legs.a, &legs.r, &legs.s);
            if ctl.window_len() >= control.min_samples {
                if control.adaptive {
                    if let Ok(report) = ctl.reoptimize() {
                        if let Some(best) = report.best_config() {
                            if best.cfg != current_cfg {
                                cluster.set_replication(best.cfg);
                                out.windows[window_index(refit_at)].reconfigs += 1;
                                out.reconfigs.push(ReconfigRecord {
                                    at_ms: refit_at,
                                    run_seed,
                                    from: current_cfg,
                                    to: best.cfg,
                                });
                                current_cfg = best.cfg;
                            }
                        }
                    }
                }
                if let Ok(p) = ctl.predict(current_cfg) {
                    predictions.push(refit_at, p.prob_consistent(scenario.probe_offset_ms));
                }
            }
            next_refit += control.refit_interval_ms;
            continue;
        }
        let drain = cluster.drain_window(SimTime::from_ms(next_window));
        fold_drain(&mut out, scenario.window_ms, &drain, &predictions);
        next_window += scenario.window_ms;
    }

    // End of the workload: stop arrivals at `duration`, let in-flight
    // probes finish or time out, and fold the final drain (ops started
    // before the cut are attributed to their start windows; late probe
    // reads clamp to the last window, as before).
    advance(&mut cluster, scenario.duration_ms);
    cluster.stop_clients();
    let settle = SimTime::from_ms(scenario.duration_ms + opts.op_timeout_ms);
    let drain = cluster.drain_window(settle);
    fold_drain(&mut out, scenario.window_ms, &drain, &predictions);

    for w in &mut out.windows {
        w.write_latency.seal();
        w.read_latency.seal();
    }
    if scenario.check_history {
        let history = cluster.take_history();
        out.check = Some(checker::check_run(&history, &cluster, scenario.check_convergence));
    }
    out
}

/// Replicate `scenario` across `trials` independent whole-scenario runs
/// sharded over `threads` (the `pbs-mc` determinism contract: shard `i`
/// seeds `seed ^ i`, run `j` of a shard derives
/// `shard_seed ^ (j · φ64)`, accumulators merge in shard order), yielding
/// per-window counts large enough for confidence intervals. Results are
/// bit-reproducible for a fixed `(seed, threads)` pair.
pub fn run_scenario_sharded(
    scenario: &Scenario,
    trials: usize,
    seed: u64,
    threads: usize,
) -> ScenarioRun {
    assert!(trials > 0 && threads > 0);
    Runner::new(trials, seed, threads).run(|_rng, info| {
        let mut acc = ScenarioRun::empty(scenario);
        for j in 0..info.trials {
            let run_seed = info.seed ^ (j as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            acc.merge(run_scenario(scenario, run_seed));
        }
        acc
    })
}
