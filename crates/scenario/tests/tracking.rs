//! Closed-loop prediction quality: on stationary segments the adaptive
//! prediction must track measured consistency within ±0.05 (the §6
//! "online PBS" acceptance bar).

use pbs_scenario::{run_scenario_sharded, Scenario};

#[test]
fn latency_spike_predictions_track_on_stationary_segments() {
    let mut sc = Scenario::latency_spike(0);
    // Trim the Monte-Carlo budget for test runtime; the error budget is
    // dominated by probe counts, which replication supplies.
    sc.control.mc_trials = 1_500;
    let run = run_scenario_sharded(&sc, 8, 7, 4);
    let err = run
        .stationary_tracking_error(&sc)
        .expect("stationary windows have both series");
    assert!(err <= 0.05, "stationary tracking error {err} > 0.05");
    // The spike must actually be visible: measured consistency during the
    // degraded regime differs from the pre-spike baseline, or the
    // controller reconfigured around it.
    let at = |ms: f64| {
        run.windows
            .iter()
            .find(|w| w.start_ms <= ms && ms < w.end_ms)
            .and_then(|w| w.measured())
            .expect("window has probes")
    };
    let baseline = at(4_500.0);
    let spike = at(8_500.0);
    assert!(
        (baseline - spike).abs() > 0.05 || !run.reconfigs.is_empty(),
        "the regime shift should move measured consistency ({baseline} vs {spike}) \
         or trigger a reconfiguration"
    );
}

#[test]
fn diurnal_load_predictions_track_through_the_cycle() {
    let mut sc = Scenario::diurnal_load(0);
    sc.control.mc_trials = 1_500;
    // 16 replicas: trough windows see ~25 probes/s, so per-window noise
    // needs the extra replication to stay inside the ±0.05 budget.
    let run = run_scenario_sharded(&sc, 16, 3, 4);
    let err = run
        .stationary_tracking_error(&sc)
        .expect("stationary windows have both series");
    assert!(err <= 0.05, "stationary tracking error {err} > 0.05");
    // Load actually cycles: peak windows see several times the trough's
    // probe volume.
    let peak: u64 = run.windows[..4].iter().map(|w| w.probes).sum();
    let trough: u64 = run.windows[4..8].iter().map(|w| w.probes).sum();
    assert!(peak > 2 * trough, "diurnal cycle in probe volume: {peak} vs {trough}");
}
