//! Scenario event semantics against a live cluster: partitions heal,
//! crashes recover in order, regime swaps take effect at the scheduled
//! simulated time, and whole runs are bit-reproducible.

use pbs_core::ReplicaConfig;
use pbs_dist::Constant;
use pbs_kvs::{Cluster, ClusterOptions, NetworkModel};
use pbs_scenario::{apply_event, run_scenario_sharded, Scenario, ScenarioEvent};
use pbs_sim::SimTime;
use std::sync::Arc;

fn cfg(n: u32, r: u32, w: u32) -> ReplicaConfig {
    ReplicaConfig::new(n, r, w).unwrap()
}

fn constant_cluster(replication: ReplicaConfig, seed: u64, timeout_ms: f64) -> Cluster {
    let mut opts = ClusterOptions::validation(replication, seed);
    opts.op_timeout_ms = timeout_ms;
    Cluster::new(
        opts,
        NetworkModel::w_ars(Arc::new(Constant::new(1.0)), Arc::new(Constant::new(1.0))),
    )
}

#[test]
fn partition_heal_restores_delivery() {
    let mut cluster = constant_cluster(cfg(3, 1, 3), 1, 300.0);
    apply_event(&mut cluster, &ScenarioEvent::Partition { groups: vec![0, 0, 1] }).unwrap();
    let w = cluster.write_from(0, 7);
    assert!(w.commit.is_none(), "W=3 cannot commit across the partition");
    apply_event(&mut cluster, &ScenarioEvent::HealPartition).unwrap();
    let w = cluster.write_from(0, 7);
    assert!(w.commit.is_some(), "healing restores full delivery");
    let r = cluster.read(7);
    assert!(r.consistent());
    // The replica that sat behind the partition holds the healed write.
    assert_eq!(cluster.node(2).stored_version(7).map(|v| v.seq), Some(w.seq));
}

#[test]
fn crash_recover_ordering() {
    let mut cluster = constant_cluster(cfg(3, 1, 3), 2, 300.0);
    cluster.advance_to(SimTime::from_ms(100.0));
    apply_event(&mut cluster, &ScenarioEvent::Crash { node: 1, down_ms: 500.0 }).unwrap();
    cluster.advance_to(SimTime::from_ms(101.0));
    assert!(cluster.node(1).is_down(), "crash takes effect at its scheduled time");
    let w = cluster.write_from(0, 3);
    assert!(w.commit.is_none(), "W=3 fails while a replica is down");
    // Recovery happens exactly `down_ms` after the crash instant.
    cluster.advance_to(SimTime::from_ms(599.0));
    assert!(cluster.node(1).is_down());
    cluster.advance_to(SimTime::from_ms(601.0));
    assert!(!cluster.node(1).is_down(), "recovered after down_ms");
    let w = cluster.write_from(0, 3);
    assert!(w.commit.is_some(), "full quorum available again");
}

#[test]
fn regime_swap_takes_effect_at_scheduled_simtime() {
    // Constant 1ms legs: a W=3 write commits exactly 2ms after issue
    // (W leg + A leg). After the swap to 5ms legs at t=100, exactly 10ms.
    let mut cluster = constant_cluster(cfg(3, 1, 3), 3, 60_000.0);
    let w = cluster.write_from(0, 1);
    assert_eq!(w.latency_ms(), Some(2.0));

    cluster.advance_to(SimTime::from_ms(100.0));
    apply_event(
        &mut cluster,
        &ScenarioEvent::SwapRegime {
            w: Arc::new(Constant::new(5.0)),
            a: Arc::new(Constant::new(5.0)),
            r: Arc::new(Constant::new(5.0)),
            s: Arc::new(Constant::new(5.0)),
        },
    )
    .unwrap();
    assert_eq!(cluster.now(), SimTime::from_ms(100.0), "swap applied at the scheduled instant");
    let w = cluster.write_from(0, 1);
    assert_eq!(w.start, SimTime::from_ms(100.0));
    assert_eq!(w.latency_ms(), Some(10.0), "new regime governs sends after the swap");

    apply_event(&mut cluster, &ScenarioEvent::RestoreBaseline).unwrap();
    let w = cluster.write_from(0, 1);
    assert_eq!(w.latency_ms(), Some(2.0), "baseline restored");
}

#[test]
fn scale_legs_multiplies_delays() {
    let mut cluster = constant_cluster(cfg(3, 1, 3), 4, 60_000.0);
    apply_event(&mut cluster, &ScenarioEvent::ScaleLegs { w: 3.0, a: 1.0, r: 1.0, s: 1.0 }).unwrap();
    let w = cluster.write_from(0, 1);
    assert_eq!(w.latency_ms(), Some(4.0), "W leg 3ms + A leg 1ms");
}

#[test]
fn degraded_link_slows_only_that_link() {
    let mut cluster = constant_cluster(cfg(3, 3, 3), 5, 60_000.0);
    apply_event(
        &mut cluster,
        &ScenarioEvent::DegradeLink(pbs_kvs::LinkFault {
            from: 0,
            to: 2,
            extra_ms: 20.0,
            scale: 1.0,
        }),
    )
    .unwrap();
    // W=3 write from node 0: the straggler is the degraded 0→2 leg.
    let w = cluster.write_from(0, 1);
    assert_eq!(w.latency_ms(), Some(22.0), "commit waits on the degraded link");
    apply_event(&mut cluster, &ScenarioEvent::ClearLinkFaults).unwrap();
    let w = cluster.write_from(0, 1);
    assert_eq!(w.latency_ms(), Some(2.0));
}

#[test]
fn malformed_events_are_rejected_not_applied() {
    let mut cluster = constant_cluster(cfg(3, 1, 1), 6, 300.0);
    // A partition grouping that doesn't cover the cluster used to be
    // silently reshaped (missing nodes folded into group 0); now it is
    // rejected outright.
    let short = ScenarioEvent::Partition { groups: vec![0, 1] };
    assert!(apply_event(&mut cluster, &short).is_err());
    let missing = ScenarioEvent::Crash { node: 9, down_ms: 10.0 };
    assert!(apply_event(&mut cluster, &missing).is_err());
    let bad_link = pbs_kvs::LinkFault { from: 0, to: 1, extra_ms: f64::NAN, scale: 1.0 };
    assert!(apply_event(&mut cluster, &ScenarioEvent::DegradeLink(bad_link)).is_err());
    let bad_profile = pbs_kvs::FaultProfile::new(1).with_drop(1.5);
    assert!(apply_event(&mut cluster, &ScenarioEvent::InjectFaults(bad_profile)).is_err());
    // None of the rejected events took effect: messages still flow.
    let w = cluster.write_from(0, 1);
    assert!(w.commit.is_some(), "rejected events must leave the cluster untouched");
}

#[test]
fn inject_and_clear_faults_round_trip() {
    let mut cluster = constant_cluster(cfg(3, 1, 3), 7, 300.0);
    let drop_all = pbs_kvs::FaultProfile::new(3).with_drop(1.0);
    apply_event(&mut cluster, &ScenarioEvent::InjectFaults(drop_all)).unwrap();
    let w = cluster.write_from(0, 2);
    assert!(w.commit.is_none(), "certain drop starves the write quorum");
    apply_event(&mut cluster, &ScenarioEvent::ClearFaults).unwrap();
    let w = cluster.write_from(0, 2);
    assert!(w.commit.is_some(), "clearing the profile restores delivery");
}

/// Shrink a scenario for fast deterministic runs.
fn quick(mut s: Scenario) -> Scenario {
    s.duration_ms = 6_000.0;
    s.stationary = vec![(3_000.0, 6_000.0)];
    s.control.mc_trials = 400;
    s.control.refit_interval_ms = 1_000.0;
    s.events.retain(|e| e.at_ms < 6_000.0);
    s
}

#[test]
fn full_run_bitwise_deterministic_for_fixed_seed_and_threads() {
    let sc = quick(Scenario::latency_spike(0));
    let a = run_scenario_sharded(&sc, 6, 11, 3);
    let b = run_scenario_sharded(&sc, 6, 11, 3);
    assert_eq!(a, b, "same (seed, threads) must be bit-identical");
    assert_eq!(a.runs, 6);
    assert!(a.windows.iter().map(|w| w.probes).sum::<u64>() > 0);

    let c = run_scenario_sharded(&sc, 6, 12, 3);
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn buggify_storm_runs_checker_and_stays_deterministic() {
    let sc = quick(Scenario::buggify_storm(0));
    let a = run_scenario_sharded(&sc, 2, 7, 2);
    let b = run_scenario_sharded(&sc, 2, 7, 2);
    assert_eq!(a, b, "chaos mode must stay bit-reproducible");
    assert_eq!(a.event_errors, 0);
    let check = a.check.expect("check_history ran the offline post-pass");
    assert_eq!(check.runs, 2);
    assert!(
        check.sessions.agrees(),
        "streaming and offline session counts diverged: {check:?}"
    );
    assert_eq!(check.labels.mismatches, 0, "online labels must survive the recount");
    assert!(check.labels.labelled_reads > 0, "the storm still completes probes");
}

#[test]
fn adaptive_rolling_partition_keeps_clocks_aligned() {
    // With adaptive on, the controller can raise R mid-run; an isolated
    // coordinator's R≥2 reads then time out, advancing the simulated
    // clock far faster than the arrival clock. The driver must shed the
    // backlog so windows, events, and refits stay aligned with SimTime.
    let mut sc = Scenario::rolling_partition(0);
    sc.control.adaptive = true;
    sc.control.mc_trials = 400;
    let run = run_scenario_sharded(&sc, 2, 5, 2);
    let activity: Vec<u64> = run
        .windows
        .iter()
        .map(|w| w.probes + w.failed_writes + w.incomplete_reads)
        .collect();
    let active = activity.iter().filter(|&&a| a > 0).count();
    assert!(
        active >= run.windows.len() - 1,
        "windows starve when clocks diverge: {activity:?}"
    );
    let mean = activity.iter().sum::<u64>() / activity.len() as u64;
    assert!(
        *activity.last().unwrap() < mean * 3,
        "probes must not pile up in the final window: {activity:?}"
    );
}

#[test]
fn rolling_partition_dips_and_recovers() {
    let sc = Scenario::rolling_partition(0);
    let run = run_scenario_sharded(&sc, 4, 9, 2);
    // At R=W=1 an isolated coordinator still commits against itself, so
    // the waves cost *consistency*, not availability: probes whose write
    // and read land on opposite sides of the partition go stale.
    let mean_over = |ranges: &[(f64, f64)]| -> f64 {
        let wins: Vec<&pbs_scenario::WindowRecord> = run
            .windows
            .iter()
            .filter(|w| ranges.iter().any(|&(a, b)| w.start_ms >= a && w.end_ms <= b))
            .collect();
        let probes: u64 = wins.iter().map(|w| w.probes).sum();
        let ok: u64 = wins.iter().map(|w| w.consistent).sum();
        ok as f64 / probes as f64
    };
    let healthy = mean_over(&[(2_000.0, 4_000.0), (16_000.0, 20_000.0)]);
    let waves = mean_over(&[(4_000.0, 6_000.0), (8_000.0, 10_000.0), (12_000.0, 14_000.0)]);
    assert!(
        waves < healthy - 0.04,
        "partition waves should depress consistency: waves {waves} vs healthy {healthy}"
    );
    // The prediction (blind to partitions — it only sees delivered-leg
    // samples) keeps tracking on the stationary segment.
    let err = run.stationary_tracking_error(&sc).expect("stationary window exists");
    assert!(err <= 0.05, "stationary tracking error {err}");
}
