//! The crash-storm audit scenario and the healing-path regressions it
//! pins: hint replay must survive scheduled message drops, expired hints
//! must fall back to anti-entropy, and the full built-in scenario must
//! reconverge after the storm with a clean checker post-pass.

use pbs_core::ReplicaConfig;
use pbs_dist::Constant;
use pbs_kvs::checker::check_run;
use pbs_kvs::{Cluster, ClusterOptions, FaultProfile, FaultSchedule, NetworkModel};
use pbs_scenario::{apply_event, run_scenario, Scenario, ScenarioEvent};
use pbs_sim::SimTime;
use std::sync::Arc;

fn net_const(ms: f64) -> NetworkModel {
    NetworkModel::w_ars(Arc::new(Constant::new(ms)), Arc::new(Constant::new(ms)))
}

fn ms(t: f64) -> SimTime {
    SimTime::from_ms(t)
}

/// The built-in scenario end to end: scheduled storm, two crashes, every
/// healing mechanism on — the run must finish with zero event errors and
/// a clean checker post-pass *including* final-state convergence.
#[test]
fn crash_storm_builtin_reconverges_and_passes_the_audit() {
    let sc = Scenario::crash_storm(0);
    sc.validate();
    let run = run_scenario(&sc, 11);
    assert_eq!(run.event_errors, 0);
    let probes: u64 = run.windows.iter().map(|w| w.probes).sum();
    assert!(probes > 300, "storm run produced too few probes: {probes}");
    let check = run.check.expect("crash-storm records history");
    assert!(check.is_clean(), "crash-storm audit failed: {check:?}");
}

/// Hint replay under a scheduled drop storm: the flush timer redelivers
/// the hint every interval until the ack lands, so even a 90% drop window
/// only delays healing until the schedule's calm tail. Pins `hint_count`
/// (cleared), `hints_delivered` (acked), and `hints_expired` (none — the
/// GC horizon is far away).
#[test]
fn hint_replay_survives_scheduled_drops() {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let mut opts = ClusterOptions::validation(cfg, 51);
    opts.hinted_handoff = true;
    opts.hint_timeout_ms = 100.0;
    opts.hint_flush_interval_ms = 200.0;
    let mut cluster = Cluster::new(opts, net_const(1.0));
    cluster.enable_history();
    let key = 3u64;
    let victim = *cluster.replicas_of(key).iter().min().unwrap();
    let coord = (0..3).find(|&n| n != victim).unwrap();

    // Drops ramp up after the write commits and clear at 1.2 s.
    let storm = FaultProfile::new(51).with_drop(0.9);
    apply_event(
        &mut cluster,
        &ScenarioEvent::InjectSchedule(FaultSchedule::calm_storm_calm(storm, 200.0, 1_200.0)),
    )
    .unwrap();

    cluster.crash_node_at(victim, ms(0.0), 600.0);
    cluster.advance_to(ms(10.0));
    let w = cluster.write_from(coord, key);
    assert!(w.commit.is_some(), "healthy replicas commit W=1");
    assert_eq!(cluster.node(victim).stored_version(key), None);

    // Recovery at 600 is mid-storm; flushes retry through the drops and
    // the calm tail guarantees delivery by ~1.4 s.
    cluster.advance_to(ms(4_000.0));
    assert_eq!(
        cluster.node(victim).stored_version(key).map(|v| v.seq),
        Some(w.seq),
        "hint replay must heal the victim despite the drop window"
    );
    assert_eq!(cluster.node(coord).hint_count(), 0, "delivered hint is cleared");
    assert!(cluster.node(coord).hints_delivered >= 1);
    assert_eq!(cluster.node(coord).hints_expired, 0, "GC horizon not reached");

    let history = cluster.take_history();
    let check = check_run(&history, &cluster, true);
    assert!(check.is_clean(), "healed run must pass the full audit: {check:?}");
}

/// When the outage outlives the hint GC horizon the hints expire — and
/// anti-entropy is the healing path of last resort. Pins `hints_expired`
/// and `sync_rounds` alongside post-recovery convergence.
#[test]
fn expired_hints_fall_back_to_anti_entropy() {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let mut opts = ClusterOptions::validation(cfg, 53);
    opts.hinted_handoff = true;
    opts.hint_timeout_ms = 100.0;
    opts.hint_flush_interval_ms = 200.0;
    // A short op timeout doubles as the hint GC horizon: a 1 s outage
    // expires every hint stashed at its start.
    opts.op_timeout_ms = 300.0;
    opts.sync_interval_ms = Some(500.0);
    let mut cluster = Cluster::new(opts, net_const(1.0));
    cluster.enable_history();
    let key = 6u64;
    let victim = *cluster.replicas_of(key).iter().min().unwrap();
    let coord = (0..3).find(|&n| n != victim).unwrap();

    cluster.crash_node_at(victim, ms(0.0), 1_000.0);
    cluster.advance_to(ms(10.0));
    let w = cluster.write_from(coord, key);
    assert!(w.commit.is_some());

    cluster.advance_to(ms(4_000.0));
    assert!(
        cluster.node(coord).hints_expired >= 1,
        "the 1 s outage must outlive the 300 ms hint horizon"
    );
    assert_eq!(cluster.node(coord).hint_count(), 0);
    assert!(cluster.node(victim).sync_rounds >= 1, "anti-entropy ran");
    assert_eq!(
        cluster.node(victim).stored_version(key).map(|v| v.seq),
        Some(w.seq),
        "anti-entropy must heal the victim after its hints expired"
    );

    let history = cluster.take_history();
    let check = check_run(&history, &cluster, true);
    assert!(check.is_clean(), "healed run must pass the full audit: {check:?}");
}

/// The schedule/profile fields are mutually exclusive, and the new
/// builtin is reachable by name.
#[test]
fn crash_storm_is_registered_and_schedule_validated() {
    assert!(Scenario::builtin_names().contains(&"crash-storm"));
    let sc = Scenario::by_name("crash-storm", 7).expect("registered");
    assert!(sc.fault_schedule.is_some());
    assert!(sc.fault_profile.is_none());
    assert!(sc.check_history && sc.check_convergence);
    sc.validate();
}
