//! # pbs-mc — deterministic parallel Monte Carlo with streaming statistics
//!
//! The execution substrate for every Monte-Carlo estimate in the PBS
//! reproduction (t-visibility curves, ⟨k,t⟩-staleness, quorum loads,
//! cluster-simulation probes). Two pieces:
//!
//! * [`Runner`] — a deterministic sharded trial runner. `trials` split
//!   across `threads` shards; shard `i` seeds its RNG from `seed ^ i`;
//!   per-shard [`Mergeable`] accumulators fold in shard order. Results are
//!   **bit-reproducible for a fixed `(seed, threads)` pair** and agree
//!   across thread counts within Monte-Carlo error.
//! * [`Summary`] / [`QuantileSketch`] / [`Moments`] — streaming per-shard
//!   statistics in O(1) memory: a mergeable t-digest quantile sketch
//!   (rank error ∝ 1/compression, exact at the extreme tails) plus exact
//!   online mean/variance/extrema. These replace the buffer-and-sort
//!   `SortedSamples` idiom in hot paths, making peak memory independent of
//!   the trial count.
//!
//! ```
//! use pbs_mc::{Runner, Summary};
//! use rand::Rng;
//!
//! let summary = Runner::new(100_000, 42, 4).run_trials(Summary::new, |rng, acc| {
//!     acc.record(rng.gen::<f64>());
//! });
//! assert_eq!(summary.count(), 100_000);
//! assert!((summary.percentile(99.0) - 0.99).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;
pub mod sketch;
pub mod summary;

pub use runner::{Mergeable, Runner, ShardInfo};
pub use sketch::QuantileSketch;
pub use summary::{Moments, Summary};
