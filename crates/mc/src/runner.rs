//! The deterministic sharded trial runner.
//!
//! Every Monte-Carlo workload in the workspace funnels through [`Runner`]:
//! `trials` are split across `threads` shards, shard `i` derives its RNG
//! seed as `seed ^ i`, and per-shard accumulators are merged in ascending
//! shard order. The result is therefore **bit-reproducible for a fixed
//! `(seed, threads)` pair** — independent of scheduling, core count, or
//! whether shards actually ran concurrently.
//!
//! Determinism contract:
//!
//! 1. shard `i` runs `trials/threads` trials, plus one extra for the first
//!    `trials % threads` shards (so shard sizes depend only on
//!    `(trials, threads)`);
//! 2. shard `i` seeds a fresh [`StdRng`] from `seed ^ i` (shard 0 therefore
//!    replays the unsharded `seed` stream exactly);
//! 3. accumulators merge left-to-right in shard order, regardless of
//!    completion order.
//!
//! Changing `threads` changes which RNG stream produces which trial, so
//! results for different thread counts agree only *statistically* (within
//! Monte-Carlo error), not bitwise.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-shard accumulators that can be folded into one result.
///
/// `merge` must be associative with respect to the sample streams it
/// absorbs; the runner always folds shards left-to-right in shard order,
/// so implementations need not be commutative.
pub trait Mergeable {
    /// Fold `other` (a later shard's accumulator) into `self`.
    fn merge(&mut self, other: Self);
}

impl<A: Mergeable, B: Mergeable> Mergeable for (A, B) {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
    }
}

impl<A: Mergeable, B: Mergeable, C: Mergeable> Mergeable for (A, B, C) {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
        self.2.merge(other.2);
    }
}

impl Mergeable for Vec<u64> {
    /// Element-wise sum; length mismatches extend with the longer tail.
    fn merge(&mut self, other: Self) {
        if self.len() < other.len() {
            self.resize(other.len(), 0);
        }
        for (a, b) in self.iter_mut().zip(other) {
            *a += b;
        }
    }
}

/// Everything a shard closure may want to know about its slice of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardInfo {
    /// Shard index in `0..threads`.
    pub index: usize,
    /// Trials assigned to this shard (may be 0 when `threads > trials`).
    pub trials: usize,
    /// The shard's derived seed, `runner_seed ^ index` — already used to
    /// seed the `StdRng` handed to the closure, exposed for workloads that
    /// seed their own sub-generators (e.g. whole-cluster simulations).
    pub seed: u64,
}

/// A deterministic sharded Monte-Carlo runner (see module docs for the
/// determinism contract).
///
/// ```
/// use pbs_mc::{Mergeable, Runner};
/// use rand::Rng;
///
/// // Estimate P(u < 0.3) over 100k trials on 4 shards. The counts are
/// // bit-reproducible for this (seed, threads) pair.
/// #[derive(Default)]
/// struct Hits(u64);
/// impl Mergeable for Hits {
///     fn merge(&mut self, other: Self) { self.0 += other.0; }
/// }
///
/// let runner = Runner::new(100_000, 42, 4);
/// let hits = runner.run_trials(Hits::default, |rng, acc| {
///     if rng.gen::<f64>() < 0.3 { acc.0 += 1; }
/// });
/// let p = hits.0 as f64 / runner.trials() as f64;
/// assert!((p - 0.3).abs() < 0.01);
/// let again = runner.run_trials(Hits::default, |rng, acc| {
///     if rng.gen::<f64>() < 0.3 { acc.0 += 1; }
/// });
/// assert_eq!(hits.0, again.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    trials: usize,
    seed: u64,
    threads: usize,
}

impl Runner {
    /// Configure a run of `trials` total trials over `threads` shards.
    ///
    /// Panics if `threads == 0`. `trials == 0` is allowed (every shard
    /// sees zero trials and accumulators merge empty).
    pub fn new(trials: usize, seed: u64, threads: usize) -> Self {
        assert!(threads > 0, "need at least one shard");
        Self { trials, seed, threads }
    }

    /// Total trials across all shards.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Base seed of the run.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of shards.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The number of trials shard `i` executes: an even split with the
    /// remainder spread over the lowest-indexed shards.
    pub fn shard_trials(&self, index: usize) -> usize {
        assert!(index < self.threads);
        let base = self.trials / self.threads;
        let extra = usize::from(index < self.trials % self.threads);
        base + extra
    }

    /// Shard `i`'s derived RNG seed: `seed ^ i`.
    ///
    /// Note for callers comparing **independent** runs: because derivation
    /// is a raw XOR, two runs whose base seeds differ by less than the
    /// shard count can share shard seeds (e.g. base seeds 42 and 43 with
    /// `threads ≥ 2` both produce shard seed 43). Separate independent
    /// runs' base seeds by more than the largest thread count in play.
    pub fn shard_seed(&self, index: usize) -> u64 {
        assert!(index < self.threads);
        self.seed ^ index as u64
    }

    /// The host's available parallelism (≥ 1) — the conventional default
    /// for `threads` when the caller has no preference.
    pub fn available_threads() -> usize {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    }

    /// Run one closure invocation per shard and fold the accumulators in
    /// shard order.
    ///
    /// The closure receives a freshly seeded [`StdRng`] (from
    /// [`shard_seed`](Self::shard_seed)) and the shard's [`ShardInfo`]; it
    /// must execute exactly `info.trials` trials to honour the determinism
    /// contract. With `threads == 1` the shard runs inline on the calling
    /// thread — no spawn, identical results.
    pub fn run<A, F>(&self, shard_fn: F) -> A
    where
        A: Mergeable + Send,
        F: Fn(&mut StdRng, ShardInfo) -> A + Sync,
    {
        let shard = |index: usize| -> A {
            let info = ShardInfo {
                index,
                trials: self.shard_trials(index),
                seed: self.shard_seed(index),
            };
            let mut rng = StdRng::seed_from_u64(info.seed);
            shard_fn(&mut rng, info)
        };
        if self.threads == 1 {
            return shard(0);
        }
        let mut results: Vec<A> = Vec::with_capacity(self.threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..self.threads).map(|i| scope.spawn(move || shard(i))).collect();
            for h in handles {
                results.push(h.join().expect("Monte-Carlo shard panicked"));
            }
        });
        let mut folded = results.remove(0);
        for acc in results {
            folded.merge(acc);
        }
        folded
    }

    /// Per-trial convenience over [`run`](Self::run): each shard builds an
    /// accumulator with `init`, then calls `trial(&mut rng, &mut acc)` once
    /// per assigned trial. Per-shard scratch state belongs inside the
    /// accumulator (its `merge` can simply drop it).
    pub fn run_trials<A, FI, FT>(&self, init: FI, trial: FT) -> A
    where
        A: Mergeable + Send,
        FI: Fn() -> A + Sync,
        FT: Fn(&mut StdRng, &mut A) + Sync,
    {
        self.run(|rng, info| {
            let mut acc = init();
            for _ in 0..info.trials {
                trial(rng, &mut acc);
            }
            acc
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[derive(Default)]
    struct Sum(f64, u64);
    impl Mergeable for Sum {
        fn merge(&mut self, other: Self) {
            self.0 += other.0;
            self.1 += other.1;
        }
    }

    #[test]
    fn shard_sizes_partition_trials() {
        let r = Runner::new(10, 0, 4);
        let sizes: Vec<usize> = (0..4).map(|i| r.shard_trials(i)).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        // More shards than trials: trailing shards are empty.
        let r = Runner::new(2, 0, 5);
        let sizes: Vec<usize> = (0..5).map(|i| r.shard_trials(i)).collect();
        assert_eq!(sizes, vec![1, 1, 0, 0, 0]);
    }

    #[test]
    fn shard_seed_is_xor() {
        let r = Runner::new(8, 0b1010, 4);
        assert_eq!(r.shard_seed(0), 0b1010);
        assert_eq!(r.shard_seed(3), 0b1001);
    }

    #[test]
    fn identical_seed_and_threads_bitwise_identical() {
        let run = || {
            Runner::new(10_000, 99, 4).run_trials(Sum::default, |rng, acc| {
                acc.0 += rng.gen::<f64>();
                acc.1 += 1;
            })
        };
        let (a, b) = (run(), run());
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "must be bit-reproducible");
        assert_eq!(a.1, 10_000);
        assert_eq!(b.1, 10_000);
    }

    #[test]
    fn single_thread_matches_shard_zero_stream() {
        // threads=1 must replay the plain `seed` stream (shard 0, seed^0).
        let sharded = Runner::new(1_000, 7, 1).run_trials(Sum::default, |rng, acc| {
            acc.0 += rng.gen::<f64>();
            acc.1 += 1;
        });
        let mut rng = StdRng::seed_from_u64(7);
        let direct: f64 = (0..1_000).map(|_| rng.gen::<f64>()).sum();
        assert_eq!(sharded.0.to_bits(), direct.to_bits());
    }

    #[test]
    fn thread_counts_agree_statistically() {
        let mean = |threads: usize| {
            let s = Runner::new(200_000, 1, threads).run_trials(Sum::default, |rng, acc| {
                acc.0 += rng.gen::<f64>();
                acc.1 += 1;
            });
            s.0 / s.1 as f64
        };
        let (m1, m4) = (mean(1), mean(4));
        assert!((m1 - 0.5).abs() < 0.005, "{m1}");
        assert!((m4 - 0.5).abs() < 0.005, "{m4}");
    }

    #[test]
    fn merge_order_is_shard_order() {
        // A non-commutative accumulator (records shard indices in order).
        struct Order(Vec<u64>);
        impl Mergeable for Order {
            fn merge(&mut self, other: Self) {
                self.0.extend(other.0);
            }
        }
        let order = Runner::new(8, 0, 8).run(|_rng, info| Order(vec![info.index as u64]));
        assert_eq!(order.0, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn vec_u64_merge_sums_elementwise() {
        let mut a = vec![1, 2];
        a.merge(vec![10, 20, 30]);
        assert_eq!(a, vec![11, 22, 30]);
    }

    #[test]
    fn zero_trials_allowed() {
        let s = Runner::new(0, 3, 4).run_trials(Sum::default, |_, _| unreachable!());
        assert_eq!(s.1, 0);
    }
}
