//! Online moments (Welford) and the combined [`Summary`] accumulator the
//! Monte-Carlo consumers record into.

use crate::runner::Mergeable;
use crate::sketch::QuantileSketch;

/// Streaming count / mean / variance / extrema in O(1) memory
/// (Welford's algorithm; merged with the Chan et al. parallel update).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// Record one sample. Panics on NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "samples must not be NaN");
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Arithmetic mean. Panics when empty.
    pub fn mean(&self) -> f64 {
        assert!(self.n > 0, "empty moments");
        self.mean
    }

    /// Population variance (`M2/n`). Panics when empty.
    pub fn variance(&self) -> f64 {
        assert!(self.n > 0, "empty moments");
        self.m2 / self.n as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample. Panics when empty.
    pub fn min(&self) -> f64 {
        assert!(self.n > 0, "empty moments");
        self.min
    }

    /// Largest sample. Panics when empty.
    pub fn max(&self) -> f64 {
        assert!(self.n > 0, "empty moments");
        self.max
    }
}

impl Mergeable for Moments {
    fn merge(&mut self, other: Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The standard per-shard accumulator: a [`QuantileSketch`] for
/// distributional queries plus [`Moments`] for exact count/mean/variance
/// and extrema. Memory is O(sketch compression), independent of trials.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Summary {
    moments: Moments,
    sketch: QuantileSketch,
}

impl Summary {
    /// Empty summary with the default sketch compression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty summary with an explicit sketch compression.
    pub fn with_compression(compression: f64) -> Self {
        Self { moments: Moments::default(), sketch: QuantileSketch::new(compression) }
    }

    /// Record one sample (amortised O(1)).
    pub fn record(&mut self, x: f64) {
        self.moments.record(x);
        self.sketch.record(x);
    }

    /// Compress any buffered sketch samples so subsequent queries are
    /// allocation-free. Optional — queries are correct either way.
    pub fn seal(&mut self) {
        self.sketch.seal();
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.moments.is_empty()
    }

    /// Exact arithmetic mean. Panics when empty.
    pub fn mean(&self) -> f64 {
        self.moments.mean()
    }

    /// Exact population variance. Panics when empty.
    pub fn variance(&self) -> f64 {
        self.moments.variance()
    }

    /// Exact population standard deviation. Panics when empty.
    pub fn std_dev(&self) -> f64 {
        self.moments.std_dev()
    }

    /// Exact smallest sample. Panics when empty.
    pub fn min(&self) -> f64 {
        self.moments.min()
    }

    /// Exact largest sample. Panics when empty.
    pub fn max(&self) -> f64 {
        self.moments.max()
    }

    /// Approximate quantile at `q ∈ [0, 1]` (see [`QuantileSketch`] for
    /// the error model). Panics when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        self.sketch.quantile(q)
    }

    /// Approximate percentile, `pct ∈ [0, 100]` — the sorted-samples
    /// `percentile` call sites read unchanged.
    pub fn percentile(&self, pct: f64) -> f64 {
        assert!((0.0..=100.0).contains(&pct), "percentile out of range: {pct}");
        self.sketch.quantile(pct / 100.0)
    }

    /// Approximate empirical CDF: fraction of samples `≤ x`. Panics when
    /// empty.
    pub fn cdf(&self, x: f64) -> f64 {
        self.sketch.cdf(x)
    }

    /// The underlying quantile sketch.
    pub fn sketch(&self) -> &QuantileSketch {
        &self.sketch
    }
}

impl Mergeable for Summary {
    fn merge(&mut self, other: Self) {
        self.moments.merge(other.moments);
        self.sketch.merge(other.sketch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn moments_match_naive() {
        let xs = [3.0, -1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut m = Moments::default();
        for &x in &xs {
            m.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((m.mean() - mean).abs() < 1e-12);
        assert!((m.variance() - var).abs() < 1e-12);
        assert_eq!(m.min(), -1.0);
        assert_eq!(m.max(), 9.0);
        assert_eq!(m.count(), 8);
    }

    #[test]
    fn moments_merge_equals_concatenation() {
        let mut rng = StdRng::seed_from_u64(0);
        let xs: Vec<f64> = (0..1_000).map(|_| rng.gen::<f64>() * 100.0 - 50.0).collect();
        let mut whole = Moments::default();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Moments::default();
        let mut b = Moments::default();
        for (i, &x) in xs.iter().enumerate() {
            if i < 300 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m = Moments::default();
        m.record(2.0);
        let snapshot = m;
        m.merge(Moments::default());
        assert_eq!(m, snapshot);
        let mut e = Moments::default();
        e.merge(snapshot);
        assert_eq!(e, snapshot);
    }

    #[test]
    fn summary_combines_exact_and_approximate() {
        let mut s = Summary::new();
        for i in 1..=1_000 {
            s.record(i as f64);
        }
        assert_eq!(s.count(), 1_000);
        assert!((s.mean() - 500.5).abs() < 1e-9);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 1_000.0);
        assert!((s.percentile(50.0) - 500.0).abs() < 10.0);
        assert!((s.cdf(250.0) - 0.25).abs() < 0.01);
    }
}
