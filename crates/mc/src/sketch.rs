//! A mergeable streaming quantile sketch (merging t-digest).
//!
//! Replaces the buffer-everything-and-sort idiom (`SortedSamples`) in the
//! Monte-Carlo hot paths: memory is **O(compression)** — independent of the
//! number of recorded samples — and per-sample cost is amortised O(1)
//! (values buffer into a small batch; full batches merge into at most
//! ~2·compression weighted centroids under the t-digest `k1` scale
//! function).
//!
//! Error model: rank (quantile) error, not value error. With the `k1`
//! scale function the rank error at quantile `q` is
//! `O(q(1−q)/compression)` — tightest exactly at the tails the paper cares
//! about (p99.9 t-visibility), where centroids degenerate to singletons and
//! queries become exact. The default compression of 200 keeps mid-quantile
//! rank error well under 0.5%.
//!
//! Determinism: insertion and merge are deterministic, so a fixed sample
//! stream (and fixed merge order — see `runner`) yields bit-identical
//! query results.

use crate::runner::Mergeable;

/// Default compression (δ): ~2δ centroids ceiling, <0.5% mid-rank error.
pub const DEFAULT_COMPRESSION: f64 = 200.0;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Centroid {
    mean: f64,
    weight: f64,
}

/// A mergeable t-digest over `f64` samples (NaN rejected, negatives fine —
/// staleness thresholds are frequently negative).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    compression: f64,
    /// Merged centroids, sorted by mean.
    centroids: Vec<Centroid>,
    /// Weight held in `centroids` (the buffer holds the rest).
    merged_weight: f64,
    /// Unmerged raw values, folded in when the batch fills or on `seal`.
    buffer: Vec<f64>,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(DEFAULT_COMPRESSION)
    }
}

impl QuantileSketch {
    /// Build with an explicit compression `δ ≥ 20` (memory ≈ 10·δ f64s,
    /// rank error ∝ 1/δ).
    pub fn new(compression: f64) -> Self {
        assert!(compression >= 20.0, "compression too small: {compression}");
        Self {
            compression,
            centroids: Vec::new(),
            merged_weight: 0.0,
            buffer: Vec::with_capacity((4.0 * compression) as usize),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        (self.merged_weight + self.buffer.len() as f64).round() as u64
    }

    /// Whether any sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.merged_weight == 0.0 && self.buffer.is_empty()
    }

    /// Smallest recorded sample. Panics when empty.
    pub fn min(&self) -> f64 {
        assert!(!self.is_empty(), "empty sketch");
        self.min
    }

    /// Largest recorded sample. Panics when empty.
    pub fn max(&self) -> f64 {
        assert!(!self.is_empty(), "empty sketch");
        self.max
    }

    /// Record one sample. Amortised O(1); panics on NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "samples must not be NaN");
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.buffer.push(x);
        if self.buffer.len() >= self.buffer.capacity() {
            self.compress();
        }
    }

    /// Fold any buffered samples into the centroid set. Queries do this
    /// on a temporary copy when needed; sealing once after a recording
    /// burst keeps subsequent queries allocation-free.
    pub fn seal(&mut self) {
        self.compress();
    }

    /// t-digest `k1` scale function: `k(q) = δ/2π · asin(2q−1)`.
    fn k(&self, q: f64) -> f64 {
        self.compression / (2.0 * std::f64::consts::PI) * (2.0 * q - 1.0).clamp(-1.0, 1.0).asin()
    }

    /// Inverse scale function, saturating at `q = 1`.
    fn k_inv(&self, k: f64) -> f64 {
        let arg = 2.0 * std::f64::consts::PI * k / self.compression;
        if arg >= std::f64::consts::FRAC_PI_2 {
            return 1.0;
        }
        (arg.sin() + 1.0) / 2.0
    }

    /// Merge the sorted buffer with the existing centroids, re-compressing
    /// under the scale-function size limit.
    fn compress(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        self.buffer.sort_unstable_by(f64::total_cmp);
        let total = self.merged_weight + self.buffer.len() as f64;

        // Merge-join the two sorted sequences into one compressed pass.
        let old = std::mem::take(&mut self.centroids);
        let mut oi = old.iter().peekable();
        let mut bi = self.buffer.iter().peekable();
        let mut next = || -> Option<Centroid> {
            match (oi.peek(), bi.peek()) {
                (Some(c), Some(&&v)) if c.mean <= v => oi.next().copied(),
                (Some(_), Some(_)) | (None, Some(_)) => {
                    bi.next().map(|&v| Centroid { mean: v, weight: 1.0 })
                }
                (Some(_), None) => oi.next().copied(),
                (None, None) => None,
            }
        };

        let mut out: Vec<Centroid> = Vec::new();
        let mut cur = next().expect("nonempty buffer");
        let mut w_so_far = 0.0;
        let mut q_limit = self.k_inv(self.k(0.0) + 1.0);
        for c in std::iter::from_fn(&mut next) {
            let proposed = cur.weight + c.weight;
            if (w_so_far + proposed) / total <= q_limit {
                cur.mean = (cur.mean * cur.weight + c.mean * c.weight) / proposed;
                cur.weight = proposed;
            } else {
                w_so_far += cur.weight;
                out.push(cur);
                q_limit = self.k_inv(self.k(w_so_far / total) + 1.0);
                cur = c;
            }
        }
        out.push(cur);

        self.centroids = out;
        self.merged_weight = total;
        self.buffer.clear();
    }

    /// Run `f` against a fully compressed view of the sketch (cheap clone
    /// only when unsealed samples are pending).
    fn with_sealed<R>(&self, f: impl FnOnce(&QuantileSketch) -> R) -> R {
        if self.buffer.is_empty() {
            f(self)
        } else {
            let mut sealed = self.clone();
            sealed.compress();
            f(&sealed)
        }
    }

    /// Approximate quantile: the value at cumulative probability
    /// `q ∈ [0, 1]` (`0 → min`, `1 → max`). Panics when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        assert!(!self.is_empty(), "empty sketch");
        if self.min == self.max {
            return self.min;
        }
        self.with_sealed(|s| {
            let total = s.merged_weight;
            let target = q * total;
            // Piecewise-linear through (0, min), (center_i, mean_i)…,
            // (total, max), where center_i is the centroid's mid-rank.
            let mut cum = 0.0;
            let mut prev_rank = 0.0;
            let mut prev_val = s.min;
            for c in &s.centroids {
                let center = cum + c.weight / 2.0;
                if target <= center {
                    let span = center - prev_rank;
                    let frac = if span > 0.0 { (target - prev_rank) / span } else { 1.0 };
                    return prev_val + frac * (c.mean - prev_val);
                }
                cum += c.weight;
                prev_rank = center;
                prev_val = c.mean;
            }
            let span = total - prev_rank;
            let frac = if span > 0.0 { (target - prev_rank) / span } else { 1.0 };
            (prev_val + frac * (s.max - prev_val)).min(s.max)
        })
    }

    /// Approximate CDF: the fraction of samples `≤ x`. Returns `0` below
    /// the observed minimum and `1` at or above the observed maximum.
    /// Panics when empty.
    ///
    /// Ties count inclusively, matching `SortedSamples::ecdf`: repeated
    /// values (atoms — e.g. the `threshold = 0` mass of instantaneous
    /// reads) survive compression as runs of equal-mean centroids, which
    /// are treated as vertical steps whose full weight counts at `x`
    /// rather than being smeared by mid-rank interpolation.
    pub fn cdf(&self, x: f64) -> f64 {
        assert!(!x.is_nan(), "cdf of NaN");
        assert!(!self.is_empty(), "empty sketch");
        if x < self.min {
            return 0.0;
        }
        if x >= self.max {
            return 1.0;
        }
        self.with_sealed(|s| {
            let total = s.merged_weight;
            let cs = &s.centroids;
            let mut cum = 0.0;
            let mut prev_rank = 0.0;
            let mut prev_val = s.min;
            let mut i = 0;
            while i < cs.len() {
                // Gather the run of centroids sharing one mean.
                let v = cs[i].mean;
                let mut w_run = cs[i].weight;
                let mut j = i + 1;
                while j < cs.len() && cs[j].mean == v {
                    w_run += cs[j].weight;
                    j += 1;
                }
                if x < v {
                    // A multi-centroid run is (almost surely) an atom: its
                    // mass sits entirely at `v`, so interpolate toward the
                    // step's base rather than its mid-rank.
                    let anchor = if j - i >= 2 { cum } else { cum + w_run / 2.0 };
                    let span = v - prev_val;
                    let frac = if span > 0.0 { (x - prev_val) / span } else { 0.0 };
                    return (prev_rank + frac * (anchor - prev_rank)) / total;
                }
                cum += w_run;
                if x == v {
                    // Inclusive tie semantics: the whole run counts.
                    return (cum / total).min(1.0);
                }
                prev_val = v;
                prev_rank = if j - i >= 2 { cum } else { cum - w_run / 2.0 };
                i = j;
            }
            let span = s.max - prev_val;
            let frac = if span > 0.0 { (x - prev_val) / span } else { 1.0 };
            ((prev_rank + frac * (total - prev_rank)) / total).min(1.0)
        })
    }
}

impl Mergeable for QuantileSketch {
    /// Absorb another sketch: both are compressed, the centroid lists are
    /// merge-joined, and the union is re-compressed. Deterministic given
    /// operand order (the runner always merges in shard order).
    fn merge(&mut self, mut other: Self) {
        if other.is_empty() {
            return;
        }
        self.compress();
        other.compress();
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if self.merged_weight == 0.0 {
            self.centroids = other.centroids;
            self.merged_weight = other.merged_weight;
            return;
        }
        let total = self.merged_weight + other.merged_weight;
        let a = std::mem::take(&mut self.centroids);
        let b = other.centroids;
        let mut ai = a.into_iter().peekable();
        let mut bi = b.into_iter().peekable();
        let mut next = || -> Option<Centroid> {
            match (ai.peek(), bi.peek()) {
                (Some(x), Some(y)) if x.mean <= y.mean => ai.next(),
                (Some(_), Some(_)) | (None, Some(_)) => bi.next(),
                (Some(_), None) => ai.next(),
                (None, None) => None,
            }
        };
        let mut out: Vec<Centroid> = Vec::new();
        let mut cur = next().expect("nonempty merge");
        let mut w_so_far = 0.0;
        let mut q_limit = self.k_inv(self.k(0.0) + 1.0);
        for c in std::iter::from_fn(&mut next) {
            let proposed = cur.weight + c.weight;
            if (w_so_far + proposed) / total <= q_limit {
                cur.mean = (cur.mean * cur.weight + c.mean * c.weight) / proposed;
                cur.weight = proposed;
            } else {
                w_so_far += cur.weight;
                out.push(cur);
                q_limit = self.k_inv(self.k(w_so_far / total) + 1.0);
                cur = c;
            }
        }
        out.push(cur);
        self.centroids = out;
        self.merged_weight = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    #[test]
    fn constant_stream_is_exact() {
        let mut s = QuantileSketch::default();
        for _ in 0..10_000 {
            s.record(5.0);
        }
        assert_eq!(s.quantile(0.0), 5.0);
        assert_eq!(s.quantile(0.5), 5.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert_eq!(s.cdf(5.0), 1.0);
        assert_eq!(s.cdf(4.999), 0.0);
        assert_eq!(s.count(), 10_000);
    }

    #[test]
    fn uniform_quantiles_close_to_truth() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = QuantileSketch::default();
        let mut all = Vec::new();
        for _ in 0..100_000 {
            let x: f64 = rng.gen();
            s.record(x);
            all.push(x);
        }
        all.sort_unstable_by(f64::total_cmp);
        for &q in &[0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            let approx = s.quantile(q);
            let exact = exact_quantile(&all, q);
            assert!((approx - exact).abs() < 0.01, "q={q}: {approx} vs {exact}");
            // Rank error is the real contract: <0.5%.
            let rank = all.partition_point(|&v| v <= approx) as f64 / all.len() as f64;
            assert!((rank - q).abs() < 0.005, "q={q}: rank {rank}");
        }
        for &x in &[0.05, 0.25, 0.5, 0.75, 0.95] {
            assert!((s.cdf(x) - x).abs() < 0.005, "cdf({x}) = {}", s.cdf(x));
        }
    }

    #[test]
    fn negative_and_mixed_values() {
        let mut s = QuantileSketch::default();
        for i in 0..1_000 {
            s.record(i as f64 - 500.0);
        }
        assert_eq!(s.min(), -500.0);
        assert_eq!(s.max(), 499.0);
        assert!(s.quantile(0.5).abs() < 5.0);
        assert!((s.cdf(0.0) - 0.5).abs() < 0.01);
        assert_eq!(s.cdf(-501.0), 0.0);
        assert_eq!(s.cdf(499.0), 1.0);
    }

    #[test]
    fn memory_is_bounded() {
        let mut s = QuantileSketch::new(100.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000_000 {
            s.record(rng.gen::<f64>() * 1e3);
        }
        s.seal();
        assert!(
            s.centroids.len() <= 2 * 100 + 10,
            "centroid count {} should be O(compression)",
            s.centroids.len()
        );
        assert_eq!(s.count(), 1_000_000);
    }

    #[test]
    fn merge_matches_single_stream_statistically() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut whole = QuantileSketch::default();
        let mut parts: Vec<QuantileSketch> =
            (0..4).map(|_| QuantileSketch::default()).collect();
        for i in 0..80_000 {
            let x = -(rng.gen::<f64>().max(1e-12)).ln() * 10.0; // Exp(mean 10)
            whole.record(x);
            parts[i % 4].record(x);
        }
        let mut merged = parts.remove(0);
        for p in parts {
            merged.merge(p);
        }
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        for &q in &[0.5, 0.9, 0.99, 0.999] {
            let a = merged.quantile(q);
            let b = whole.quantile(q);
            assert!((a - b).abs() < 0.02 * b.max(1.0), "q={q}: merged {a} vs whole {b}");
        }
    }

    #[test]
    fn deterministic_for_fixed_stream() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(9);
            let mut s = QuantileSketch::default();
            for _ in 0..50_000 {
                s.record(rng.gen::<f64>());
            }
            s.seal();
            s
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
        assert_eq!(a.quantile(0.999).to_bits(), b.quantile(0.999).to_bits());
    }

    #[test]
    fn queries_with_pending_buffer_match_sealed() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = QuantileSketch::default();
        for _ in 0..10_123 {
            s.record(rng.gen::<f64>());
        }
        let before = s.quantile(0.9);
        let cdf_before = s.cdf(0.25);
        s.seal();
        assert_eq!(before.to_bits(), s.quantile(0.9).to_bits());
        assert_eq!(cdf_before.to_bits(), s.cdf(0.25).to_bits());
    }

    #[test]
    fn cdf_and_quantile_are_monotone() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = QuantileSketch::default();
        for _ in 0..30_000 {
            s.record(rng.gen::<f64>() * rng.gen::<f64>() * 100.0);
        }
        s.seal();
        let mut prev = 0.0;
        for i in 0..=100 {
            let c = s.cdf(i as f64);
            assert!(c >= prev - 1e-12, "cdf not monotone at {i}: {c} < {prev}");
            prev = c;
        }
        let mut prevq = f64::NEG_INFINITY;
        for i in 0..=100 {
            let v = s.quantile(i as f64 / 100.0);
            assert!(v >= prevq - 1e-12, "quantile not monotone at {i}");
            prevq = v;
        }
    }

    #[test]
    #[should_panic(expected = "empty sketch")]
    fn empty_quantile_panics() {
        QuantileSketch::default().quantile(0.5);
    }
}
