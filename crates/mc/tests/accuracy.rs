//! Quantile-sketch accuracy against `SortedSamples` ground truth on the
//! four production latency fits (Table 3): LNKD-SSD, LNKD-DISK, YMMR, and
//! WAN (LNKD-DISK legs shifted by the 75 ms one-way penalty).
//!
//! The sketch's contract is *rank* error (∝ 1/compression, tightest at the
//! tails), so each percentile check accepts any value between the
//! ground-truth quantiles a small rank band away — plus a tiny relative
//! slack for interpolation between sorted samples.

use pbs_dist::production as fits;
use pbs_dist::stats::SortedSamples;
use pbs_dist::LatencyDistribution;
use pbs_mc::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TRIALS: usize = 200_000;

/// Assert the sketch percentile sits inside the ground-truth rank band
/// `pct ± band_pct` (widened by 1% relative slack for interpolation).
fn check_fit(name: &str, dist: &dyn LatencyDistribution, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut summary = Summary::new();
    let mut raw = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        let x = dist.sample(&mut rng);
        summary.record(x);
        raw.push(x);
    }
    summary.seal();
    let truth = SortedSamples::new(raw);

    assert_eq!(summary.count() as usize, TRIALS);
    assert_eq!(summary.min(), truth.min(), "{name}: exact min");
    assert_eq!(summary.max(), truth.max(), "{name}: exact max");
    assert!(
        (summary.mean() - truth.mean()).abs() < 1e-9 * truth.mean().abs().max(1.0),
        "{name}: exact mean {} vs {}",
        summary.mean(),
        truth.mean()
    );

    // (percentile, allowed rank band in percentage points)
    for &(pct, band) in &[(50.0, 0.5), (99.0, 0.1), (99.9, 0.05)] {
        let approx = summary.percentile(pct);
        let lo = truth.percentile((pct - band).max(0.0));
        let hi = truth.percentile((pct + band).min(100.0));
        let slack = 0.01 * hi.abs().max(1e-3);
        assert!(
            approx >= lo - slack && approx <= hi + slack,
            "{name} p{pct}: sketch {approx} outside ground-truth band [{lo}, {hi}]"
        );
    }

    // CDF agreement at the ground-truth quartiles.
    for &pct in &[25.0, 50.0, 75.0, 95.0] {
        let x = truth.percentile(pct);
        let (a, b) = (summary.cdf(x), truth.ecdf(x));
        assert!((a - b).abs() < 0.01, "{name} cdf({x}): sketch {a} vs exact {b}");
    }
}

/// The WAN one-way "fit": LNKD-DISK base legs plus the fixed 75 ms
/// inter-datacenter penalty of §5.5.
struct WanShifted(Box<dyn LatencyDistribution>);

impl LatencyDistribution for WanShifted {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        fits::WAN_ONE_WAY_DELAY_MS + self.0.sample(rng)
    }
    fn cdf(&self, x: f64) -> f64 {
        self.0.cdf(x - fits::WAN_ONE_WAY_DELAY_MS)
    }
    fn mean(&self) -> f64 {
        fits::WAN_ONE_WAY_DELAY_MS + self.0.mean()
    }
    fn describe(&self) -> String {
        format!("75ms + {}", self.0.describe())
    }
}

#[test]
fn lnkd_ssd_percentiles() {
    check_fit("LNKD-SSD", &fits::lnkd_ssd(), 101);
}

#[test]
fn lnkd_disk_percentiles() {
    // The heavy-tailed write mixture — the adversarial case for p99.9.
    check_fit("LNKD-DISK W", &fits::lnkd_disk_write(), 102);
    check_fit("LNKD-DISK A=R=S", &fits::lnkd_disk_ars(), 103);
}

#[test]
fn ymmr_percentiles() {
    check_fit("YMMR W", &fits::ymmr_write(), 104);
    check_fit("YMMR A=R=S", &fits::ymmr_ars(), 105);
}

#[test]
fn wan_percentiles() {
    check_fit("WAN remote leg", &WanShifted(Box::new(fits::lnkd_disk_write())), 106);
}
