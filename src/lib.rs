//! # PBS — Probabilistically Bounded Staleness for Practical Partial Quorums
//!
//! A full reproduction of Bailis et al., VLDB 2012, as a Rust workspace.
//! This façade crate re-exports every subsystem so examples and downstream
//! users can depend on a single crate:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`math`] | `pbs-core` | Closed-form Eqs. 1–5, load bounds |
//! | [`dist`] | `pbs-dist` | Latency distributions, mixture fitting, stats |
//! | [`mc`] | `pbs-mc` | Deterministic sharded runner, streaming sketches |
//! | [`sim`] | `pbs-sim` | Deterministic discrete-event simulation kernel |
//! | [`kvs`] | `pbs-kvs` | Dynamo-style quorum-replicated KV store |
//! | [`wars`] | `pbs-wars` | WARS Monte Carlo t-visibility engine |
//! | [`quorum`] | `pbs-quorum` | Quorum-system constructions & analysis |
//! | [`workload`] | `pbs-workload` | Arrival processes, key popularity, sessions |
//! | [`predictor`] | `pbs-predictor` | SLA optimizer, online prediction, multi-key |
//! | [`scenario`] | `pbs-scenario` | Closed-loop chaos scenarios + adaptive reconfiguration |
//!
//! ## Thirty-second tour
//!
//! ```
//! use pbs::math::{ReplicaConfig, staleness};
//! use pbs::wars::{production, TVisibility};
//!
//! // How consistent is Cassandra's default N=3, R=W=1?
//! let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
//! let p_miss = staleness::non_intersection_probability(cfg); // 2/3 per read…
//! assert!(p_miss > 0.6);
//!
//! // …in versions. In *time*, production latencies close the gap fast:
//! let model = production::lnkd_ssd_model(cfg);
//! let curve = TVisibility::simulate(&model, 10_000, 42);
//! // Already >90% consistent immediately after commit, and ~100% within 5ms.
//! assert!(curve.prob_consistent(0.0) > 0.9);
//! assert!(curve.prob_consistent(5.0) > 0.999);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pbs_core as math;
pub use pbs_dist as dist;
pub use pbs_kvs as kvs;
pub use pbs_mc as mc;
pub use pbs_predictor as predictor;
pub use pbs_quorum as quorum;
pub use pbs_scenario as scenario;
pub use pbs_sim as sim;
pub use pbs_wars as wars;
pub use pbs_workload as workload;
