//! Quickstart — the terminal equivalent of the paper's interactive demo
//! (pbs.cs.berkeley.edu): pick `N`, `R`, `W`, get PBS answers.
//!
//! ```text
//! cargo run --release --example quickstart            # Cassandra defaults
//! cargo run --release --example quickstart -- 3 2 1   # custom N R W
//! ```

use pbs::math::{staleness, ReplicaConfig};
use pbs::wars::production::{lnkd_disk_model, lnkd_ssd_model};
use pbs::wars::TVisibility;

fn main() {
    // ---- configuration from argv (defaults: Cassandra's N=3, R=W=1) ------
    let args: Vec<u32> =
        std::env::args().skip(1).map(|a| a.parse().expect("N R W must be integers")).collect();
    let (n, r, w) = match args.as_slice() {
        [] => (3, 1, 1),
        [n, r, w] => (*n, *r, *w),
        _ => {
            eprintln!("usage: quickstart [N R W]");
            std::process::exit(2);
        }
    };
    let cfg = match ReplicaConfig::new(n, r, w) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            std::process::exit(2);
        }
    };

    println!("Probabilistically Bounded Staleness for {cfg}");
    println!(
        "quorum type: {}",
        if cfg.is_strict() { "strict (R+W > N) — always consistent" } else { "partial (R+W ≤ N)" }
    );

    // ---- "how consistent?" — k-staleness (closed form, Eq. 2) ------------
    println!("\nHow consistent? P(read within k versions of the latest write):");
    for k in [1u32, 2, 3, 5, 10] {
        println!("  k = {k:>2}: {:>8.4}%", 100.0 * staleness::prob_within_k_versions(cfg, k));
    }

    // ---- "how eventual?" — t-visibility under production latencies -------
    let trials = 100_000;
    for (name, tv) in [
        ("LNKD-SSD (SSD-backed Voldemort)", TVisibility::simulate(&lnkd_ssd_model(cfg), trials, 42)),
        ("LNKD-DISK (spinning disks)", TVisibility::simulate(&lnkd_disk_model(cfg), trials, 42)),
    ] {
        println!("\nHow eventual? t-visibility under {name}:");
        for t in [0.0, 1.0, 5.0, 10.0, 50.0] {
            println!("  P(consistent, t = {t:>4.0} ms) = {:>9.4}%", 100.0 * tv.prob_consistent(t));
        }
        match tv.t_at_probability(0.999) {
            Some(t) => println!("  99.9% of reads are consistent within {t:.2} ms of commit"),
            None => println!("  99.9% consistency unresolved at {trials} trials"),
        }
        println!(
            "  latency p99.9: reads {:.2} ms, writes {:.2} ms",
            tv.read_latency_percentile(99.9),
            tv.write_latency_percentile(99.9)
        );
    }
}
