//! Production latency study — the §5 narrative end to end: how write-tail
//! behaviour (SSD vs. disk vs. fsync-bound vs. WAN) shapes the
//! latency/consistency trade-off, and what partial quorums buy.
//!
//! ```text
//! cargo run --release --example production_study
//! ```

use pbs::math::ReplicaConfig;
use pbs::wars::production::ProductionProfile;
use pbs::wars::TVisibility;

fn main() {
    let trials = 200_000;
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();

    println!("Production study (paper §5): N=3, R=W=1 unless noted\n");

    // ---- §5.6: write tails drive the window of inconsistency --------------
    println!("{:<11} {:>11} {:>12} {:>12} {:>12}", "profile", "P(t=0)", "t@99% (ms)", "t@99.9%", "Lw p99.9");
    for profile in ProductionProfile::ALL {
        let tv = TVisibility::simulate(profile.model(cfg).as_ref(), trials, 7);
        let fmt = |o: Option<f64>| o.map_or("—".to_string(), |t| format!("{t:.2}"));
        println!(
            "{:<11} {:>10.2}% {:>12} {:>12} {:>12.2}",
            profile.name(),
            100.0 * tv.prob_consistent(0.0),
            fmt(tv.t_at_probability(0.99)),
            fmt(tv.t_at_probability(0.999)),
            tv.write_latency_percentile(99.9),
        );
    }
    println!("\n→ the §5.6 story: SSDs shrink the write tail, and the window of");
    println!("  inconsistency collapses from tens of ms (disk) to ~2 ms (SSD).\n");

    // ---- §5.8: the latency price of strictness -----------------------------
    println!("Latency vs. consistency on YMMR (Yammer Riak fits):");
    println!("{:<14} {:>12} {:>12} {:>14}", "config", "Lr p99.9", "Lw p99.9", "t@99.9% (ms)");
    for (r, w) in [(1u32, 1u32), (2, 1), (3, 1)] {
        let c = ReplicaConfig::new(3, r, w).unwrap();
        let tv = TVisibility::simulate(ProductionProfile::Ymmr.model(c).as_ref(), trials, 7);
        let t = if c.is_strict() {
            "0 (strict)".to_string()
        } else {
            tv.t_at_probability(0.999).map_or("—".into(), |t| format!("{t:.0}"))
        };
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>14}",
            format!("R={r}, W={w}"),
            tv.read_latency_percentile(99.9),
            tv.write_latency_percentile(99.9),
            t,
        );
    }
    println!("\n→ the §5.8 trade: R=2,W=1 gives ~99.9%-consistency within a couple");
    println!("  hundred ms while cutting p99.9 combined latency by ~80% vs R=3.");

    // ---- §5.7: replication factor and immediate consistency ----------------
    println!("\nReplication factor sweep (LNKD-DISK, R=W=1):");
    for n in [2u32, 3, 5, 10] {
        let c = ReplicaConfig::new(n, 1, 1).unwrap();
        let tv = TVisibility::simulate(ProductionProfile::LnkdDisk.model(c).as_ref(), trials, 7);
        println!(
            "  N={n:>2}: P(consistent at t=0) = {:>6.2}%, t@99.9% = {:>6.1} ms",
            100.0 * tv.prob_consistent(0.0),
            tv.t_at_probability(0.999).unwrap_or(f64::NAN),
        );
    }
    println!("\n→ more replicas hurt *immediate* consistency (more stragglers to race)");
    println!("  but barely move the 99.9% convergence point — §5.7's conclusion.");
}
