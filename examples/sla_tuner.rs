//! SLA tuner — §6's "Latency/Staleness SLAs" and "Variable configurations":
//! automatically choose `(N, R, W)` under staleness + durability
//! constraints, then react to latency drift with the adaptive controller.
//!
//! ```text
//! cargo run --release --example sla_tuner
//! ```

use pbs::dist::{Exponential, LatencyDistribution};
use pbs::predictor::adaptive::AdaptiveController;
use pbs::predictor::sla::{optimize, SlaSpec};
use pbs::wars::production::ProductionProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials = 50_000;

    // ---- One-shot optimization against production profiles -----------------
    println!("SLA: ≥99.9% consistent reads within 15 ms, minimum W=1, N=3\n");
    let spec = SlaSpec::consistency(0.999, 15.0);
    for profile in ProductionProfile::ALL {
        let report = optimize(&|cfg| profile.model(cfg), &[3], &spec, trials, 1);
        match report.best_config() {
            Some(best) => println!(
                "  {:<10} → {}  (Lr+Lw p99.9 = {:.2} ms, P(consistent@15ms) = {:.3}%)",
                profile.name(),
                best.cfg,
                best.combined_latency(),
                best.consistency * 100.0
            ),
            None => println!("  {:<10} → no configuration meets the SLA", profile.name()),
        }
    }
    println!("\n→ fast SSDs let R=W=1 qualify; heavy write tails force read or");
    println!("  write quorum growth — the knob the paper urges operators to reason about.");

    // ---- Durability floor ---------------------------------------------------
    println!("\nSame SLA plus durability floor W ≥ 2 (LNKD-DISK), N ∈ {{3, 5}}:");
    let mut durable = SlaSpec::consistency(0.999, 15.0);
    durable.min_write_quorum = 2;
    for n in [3u32, 5] {
        let report =
            optimize(&|cfg| ProductionProfile::LnkdDisk.model(cfg), &[n], &durable, trials, 2);
        match report.best_config() {
            Some(best) => println!(
                "  N={n} → {}  (Lr+Lw p99.9 = {:.2} ms)",
                best.cfg,
                best.combined_latency()
            ),
            None => println!("  N={n} → no configuration meets the SLA"),
        }
    }

    // ---- Adaptive reconfiguration under drift ------------------------------
    println!("\nAdaptive controller: watch one-way latencies, refit, re-optimize.");
    let sla = SlaSpec::consistency(0.99, 5.0);
    let mut controller = AdaptiveController::new(sla, vec![3], 5_000, 20_000, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let ars = Exponential::from_mean(0.5);

    for (phase, write_mean) in [("healthy disks (mean W = 2 ms)", 2.0), ("degraded disks (mean W = 25 ms)", 25.0)] {
        let w = Exponential::from_mean(write_mean);
        for _ in 0..5_000 {
            controller.observe(
                w.sample(&mut rng),
                ars.sample(&mut rng),
                ars.sample(&mut rng),
                ars.sample(&mut rng),
            );
        }
        let report = controller.reoptimize().expect("window was just filled");
        match report.best_config() {
            Some(best) => println!(
                "  {phase:<32} → {}  ({} window samples)",
                best.cfg,
                controller.window_len()
            ),
            None => println!("  {phase:<32} → SLA unsatisfiable; alert the operator"),
        }
    }
    println!("\n→ §6's 'variable configurations': the same SLA maps to different");
    println!("  replication settings as the latency distributions drift.");
}
