//! Asynchronous staleness detection (§4.3) on the live simulated store:
//! coordinators compare late read responses with what they returned, and we
//! grade the detector against the online ground-truth watermark — including
//! the paper's predicted false-positive mode (in-flight writes). Traffic is
//! open-loop: an in-sim client actor writes a single hot key and probes
//! each commit with a read 3 ms later, with many operations in flight.
//!
//! ```text
//! cargo run --release --example staleness_detector
//! ```

use pbs::dist::Exponential;
use pbs::kvs::{
    run_open_loop, ClientOptions, ClusterOptions, NetworkModel, OpenLoopOptions,
};
use pbs::math::ReplicaConfig;
use pbs::workload::{FixedRate, OpMix, OpSource, OpStream, UniformKeys};
use std::sync::Arc;

fn main() {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let mut opts = ClusterOptions::validation(cfg, 11);
    opts.op_timeout_ms = 5_000.0;
    let network = NetworkModel::w_ars(
        Arc::new(Exponential::from_mean(10.0)), // disk-like writes
        Arc::new(Exponential::from_mean(2.0)),  // fast A=R=S
    );

    // A single hot key: one write every 6 ms, each probed by a read 3 ms
    // after its commit — plenty of reordering *and* in-flight writes.
    let pairs = 10_000usize;
    let engine = OpenLoopOptions::new(pairs as f64 * 6.0, 1_000.0, opts.op_timeout_ms);
    println!("Running ~{} open-loop operations against a simulated {cfg} cluster…", pairs * 2);
    let report = run_open_loop(
        opts,
        &network,
        &engine,
        1,
        ClientOptions {
            op_timeout_ms: opts.op_timeout_ms,
            probe_read_offset_ms: Some(3.0),
            ..ClientOptions::default()
        },
        |_| -> Box<dyn OpSource> {
            Box::new(OpStream::new(
                FixedRate::new(6.0),
                UniformKeys::new(1),
                OpMix::writes_only(),
                1,
            ))
        },
        |_| {},
    );

    let reads = report.reads;
    let stale = report.reads - report.consistent;
    println!(
        "\nGround truth: {reads} reads, {stale} stale ({:.2}% consistent)",
        100.0 * report.consistency_rate()
    );

    let d = report.detector;
    println!("\nDetector (§4.3): compare the N−R late responses to the returned value");
    println!("  flagged reads:     {}", d.flagged);
    println!("  true positives:    {}", d.true_positives);
    println!(
        "  false positives:   {}  ← in-flight/newer-but-uncommitted versions",
        d.false_positives
    );
    println!("  missed stale:      {}", d.missed_stale);
    println!("  precision {:.3}, recall {:.3}", d.precision(), d.recall());

    println!("\nStaleness depth (k-staleness on the live store):");
    let mean_behind = if stale > 0 {
        report.versions_behind_total as f64 / stale as f64
    } else {
        0.0
    };
    println!("  mean versions behind over stale reads: {mean_behind:.2}");
    println!("\n→ even when a read is stale, it is almost always exactly one version");
    println!("  behind — the paper's argument for why k-staleness tolerance is cheap.");
}
