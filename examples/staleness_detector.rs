//! Asynchronous staleness detection (§4.3) on the live simulated store:
//! coordinators compare late read responses with what they returned, and we
//! grade the detector against ground truth — including the paper's
//! predicted false-positive mode (in-flight writes).
//!
//! ```text
//! cargo run --release --example staleness_detector
//! ```

use pbs::dist::Exponential;
use pbs::kvs::cluster::{Cluster, ClusterOptions, TraceOp};
use pbs::kvs::NetworkModel;
use pbs::math::ReplicaConfig;
use std::sync::Arc;

fn main() {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let mut cluster = Cluster::new(
        ClusterOptions::validation(cfg, 11),
        NetworkModel::w_ars(
            Arc::new(Exponential::from_mean(10.0)), // disk-like writes
            Arc::new(Exponential::from_mean(2.0)),  // fast A=R=S
        ),
    );

    // A single hot key, alternating writes and reads every 3 ms: plenty of
    // reordering *and* plenty of in-flight writes.
    let ops = 20_000;
    let trace: Vec<TraceOp> =
        (0..ops).map(|i| TraceOp { at_ms: i as f64 * 3.0, is_read: i % 2 == 1, key: 1 }).collect();

    println!("Running {ops} operations against a simulated {cfg} cluster…");
    let report = cluster.run_trace(&trace);

    let reads = report.reads.len();
    let stale = report.reads.iter().filter(|r| !r.label.consistent).count();
    println!("\nGround truth: {reads} reads, {stale} stale ({:.2}% consistent)", 100.0 * report.consistency_rate());

    let d = report.detector;
    println!("\nDetector (§4.3): compare the N−R late responses to the returned value");
    println!("  flagged reads:     {}", d.flagged);
    println!("  true positives:    {}", d.true_positives);
    println!("  false positives:   {}  ← in-flight/newer-but-uncommitted versions", d.false_positives);
    println!("  missed stale:      {}", d.missed_stale);
    let precision = d.true_positives as f64 / d.flagged.max(1) as f64;
    let recall = d.true_positives as f64 / (d.true_positives + d.missed_stale).max(1) as f64;
    println!("  precision {precision:.3}, recall {recall:.3}");

    // Versions-behind distribution: "how stale is stale?"
    let mut hist = [0usize; 5];
    for r in &report.reads {
        hist[(r.label.versions_behind as usize).min(4)] += 1;
    }
    println!("\nVersions behind (k-staleness on the live store):");
    for (k, count) in hist.iter().enumerate() {
        let label = if k == 4 { "≥4".to_string() } else { k.to_string() };
        println!("  {label:>2} versions: {:>6.2}%", 100.0 * *count as f64 / reads as f64);
    }
    println!("\n→ even when a read is stale, it is almost always exactly one version");
    println!("  behind — the paper's argument for why k-staleness tolerance is cheap.");
}
