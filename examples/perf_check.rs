//! Throughput / memory spot-check for the `pbs-mc`-backed WARS engine:
//!
//! ```sh
//! cargo run --release --example perf_check -- 1000000 8
//! ```
//!
//! Peak RSS stays flat as the trial count grows (streaming sketches hold
//! O(threads · compression) state — no sample buffers), and output is
//! bit-identical across repeated runs for a fixed `(seed, threads)` pair.

use pbs::math::ReplicaConfig;
use pbs::wars::production::lnkd_disk_model;
use pbs::wars::TVisibility;

fn main() {
    let mut args = std::env::args().skip(1);
    let trials: usize = args.next().map_or(1_000_000, |v| v.parse().expect("trials"));
    let threads: usize = args.next().map_or(1, |v| v.parse().expect("threads"));
    let model = lnkd_disk_model(ReplicaConfig::new(3, 1, 1).unwrap());
    let t0 = std::time::Instant::now();
    let tv = TVisibility::simulate_parallel(&model, trials, 42, threads);
    let dt = t0.elapsed();
    println!(
        "trials={} threads={} time={:?} trials/sec={:.0} p0={:.5} t999={:.3}",
        trials,
        threads,
        dt,
        trials as f64 / dt.as_secs_f64(),
        tv.prob_consistent(0.0),
        tv.t_at_probability(0.999).unwrap()
    );
}
