//! Monotonic-reads sessions (§3.2): validate the Eq. 3 closed form against
//! a live session on the simulated store — a client re-reading a key while
//! the rest of the world writes to it.
//!
//! ```text
//! cargo run --release --example monotonic_sessions
//! ```

use pbs::dist::Exponential;
use pbs::kvs::cluster::{Cluster, ClusterOptions};
use pbs::math::{staleness, ReplicaConfig};
use pbs::sim::SimDuration;
use pbs::workload::SessionModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    println!("PBS monotonic reads (§3.2) on {cfg}\n");

    // ---- closed form ---------------------------------------------------------
    println!("{:<12} {:>12} {:>16}", "γgw/γcr", "k = 1+ratio", "p_violation (Eq.3)");
    for ratio in [0.25f64, 1.0, 4.0] {
        let p = staleness::monotonic_reads_violation(cfg, ratio, 1.0);
        println!("{ratio:<12} {:>12.2} {:>16.4}", 1.0 + ratio, p);
    }

    // ---- session-model empirical k -------------------------------------------
    let mut rng = StdRng::seed_from_u64(5);
    let session = SessionModel::new(2.0, 1.0);
    println!(
        "\nSession simulation (γgw=2, γcr=1): empirical k = {:.3} vs closed-form {:.3}",
        session.empirical_k(&mut rng, 100_000),
        session.k()
    );

    // ---- live store: count non-monotonic session reads ------------------------
    // One client reads key 1 every 4 ms while writers commit every 2 ms
    // (γgw/γcr = 2). A session violation = this client observing an older
    // version than it previously observed.
    let mut cluster = Cluster::new(
        ClusterOptions::validation(cfg, 21),
        NetWrap::net(),
    );
    let key = 1u64;
    let session_reads = 4_000;
    let mut last_seen = 0u64;
    let mut violations = 0usize;
    for _ in 0..session_reads {
        // Two world writes between the client's reads.
        for _ in 0..2 {
            let _ = cluster.write(key);
        }
        let at = cluster.now() + SimDuration::from_ms(4.0);
        let r = cluster.read_at(key, at);
        if let Some(seq) = r.returned_seq {
            if seq < last_seen {
                violations += 1;
            }
            last_seen = last_seen.max(seq);
        } else if last_seen > 0 {
            violations += 1; // saw data before, now nothing — also regressive
        }
    }
    let observed = violations as f64 / session_reads as f64;
    let predicted = staleness::monotonic_reads_violation(cfg, 2.0, 1.0);
    println!("\nLive store session ({session_reads} reads, 2 writes between reads):");
    println!("  non-monotonic reads observed : {observed:.4}");
    println!("  Eq. 3 closed-form bound      : {predicted:.4}");
    println!("\n→ the closed form is a (frozen-quorum) upper bound; expanding quorums");
    println!("  on the live store violate monotonicity strictly less often.");
}

/// Local helper so the example reads top-to-bottom.
struct NetWrap;
impl NetWrap {
    fn net() -> pbs::kvs::NetworkModel {
        pbs::kvs::NetworkModel::w_ars(
            Arc::new(Exponential::from_mean(10.0)),
            Arc::new(Exponential::from_mean(1.0)),
        )
    }
}
