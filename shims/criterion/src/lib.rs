//! Offline stand-in for the subset of `criterion` 0.5 used by this
//! workspace's benches.
//!
//! See `shims/README.md` for scope. Each benchmark is warmed up once, then
//! time-boxed (~300 ms or 10k iterations, whichever first) and reported as
//! a single mean-per-iteration line — enough to compare hot paths across
//! commits without the real crate's statistics machinery.
//!
//! When the `BENCH_JSON` environment variable names a file, every bench
//! process additionally appends its results to that file as a JSON
//! summary (`{"benchmarks": [...], "metrics": [...]}`), including derived
//! throughput (elements/sec) — CI uses this to emit machine-readable perf
//! records. Besides timed benchmarks, a bench can publish standalone
//! scalar facts (peak queue depths, allocation counts, occupancy figures)
//! through [`record_metric`]; they land in the `metrics` array as
//! `{"name": ..., "value": ...}` objects instead of being smuggled
//! through fake timing entries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One recorded benchmark result (for the `BENCH_JSON` summary).
#[derive(Debug, Clone)]
struct BenchRecord {
    label: String,
    mean_ns: f64,
    iters: u64,
    throughput: Option<Throughput>,
}

static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());
static METRICS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Publish a standalone scalar metric into the `BENCH_JSON` summary's
/// `metrics` array (no-op on the printed report). Use this for facts that
/// are not timings — peak queue depths, allocation counts, occupancy —
/// rather than encoding them into benchmark labels or fake ns/iter
/// figures.
pub fn record_metric(name: impl Into<String>, value: f64) {
    METRICS.lock().expect("metric record lock").push((name.into(), value));
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Entry lines of `section` in an existing summary file (our own
/// line-oriented format: one `    {...}` object per line between the
/// section header and its closing `  ]`).
fn existing_entries(existing: &str, section: &str) -> Vec<String> {
    let header = format!("  \"{section}\": [");
    let mut out = Vec::new();
    let mut in_section = false;
    for line in existing.lines() {
        if line == header {
            in_section = true;
        } else if in_section {
            if line.starts_with("  ]") {
                break;
            }
            out.push(line.trim_end_matches(',').to_string());
        }
    }
    out
}

/// Append this process's benchmark results and metrics to the file named
/// by the `BENCH_JSON` environment variable (no-op when unset). Called by
/// [`criterion_main!`] after all groups run; safe to call manually.
///
/// The file is this shim's own format — `{"benchmarks": [...],
/// "metrics": [...]}` — and appending from several bench processes merges
/// into the existing arrays so one summary can aggregate `wars_mc`,
/// `kvs_sim`, etc.
pub fn write_json_summary() {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let records = RECORDS.lock().expect("bench record lock");
    let metrics = METRICS.lock().expect("metric record lock");
    if records.is_empty() && metrics.is_empty() {
        return;
    }
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let mut bench_entries = existing_entries(&existing, "benchmarks");
    let mut metric_entries = existing_entries(&existing, "metrics");
    bench_entries.extend(records.iter().map(|r| {
        let mut fields = vec![
            format!("\"label\": \"{}\"", json_escape(&r.label)),
            format!("\"mean_ns_per_iter\": {:.1}", r.mean_ns),
            format!("\"iters\": {}", r.iters),
        ];
        match r.throughput {
            Some(Throughput::Elements(n)) => {
                fields.push(format!("\"elements_per_iter\": {n}"));
                fields.push(format!("\"elements_per_sec\": {:.1}", n as f64 / r.mean_ns * 1e9));
            }
            Some(Throughput::Bytes(n)) => {
                fields.push(format!("\"bytes_per_iter\": {n}"));
                fields.push(format!("\"bytes_per_sec\": {:.1}", n as f64 / r.mean_ns * 1e9));
            }
            None => {}
        }
        format!("    {{{}}}", fields.join(", "))
    }));
    metric_entries.extend(metrics.iter().map(|(name, value)| {
        format!("    {{\"name\": \"{}\", \"value\": {value}}}", json_escape(name))
    }));
    let body = |entries: &[String]| {
        if entries.is_empty() {
            String::new()
        } else {
            format!("\n{}\n  ", entries.join(",\n"))
        }
    };
    let merged = format!(
        "{{\n  \"benchmarks\": [{}],\n  \"metrics\": [{}]\n}}\n",
        body(&bench_entries),
        body(&metric_entries),
    );
    if let Err(e) = std::fs::write(&path, merged) {
        eprintln!("BENCH_JSON: failed to write {path}: {e}");
    }
}

/// Prevent the optimizer from discarding a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for a benchmark's throughput report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("sort", "n=1000")` renders as `sort/n=1000`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Anything usable as a benchmark label (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkLabel {
    /// Render to the printed label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Timing loop handle passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly, recording the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let budget = Duration::from_millis(300);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while iters < 10_000 {
            black_box(f());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.iters = iters;
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let mut line = format!("{label:<40} {:>12}/iter ({} iters)", human_time(bencher.mean_ns), bencher.iters);
    if let Some(tp) = throughput {
        let per_iter = match tp {
            Throughput::Elements(n) => format!("{:.1} Melem/s", n as f64 / bencher.mean_ns * 1e3),
            Throughput::Bytes(n) => format!("{:.1} MB/s", n as f64 / bencher.mean_ns * 1e3),
        };
        line.push_str(&format!("  {per_iter}"));
    }
    println!("{line}");
    RECORDS.lock().expect("bench record lock").push(BenchRecord {
        label: label.to_string(),
        mean_ns: bencher.mean_ns,
        iters: bencher.iters,
        throughput,
    });
}

/// The benchmark driver. Construct via `Criterion::default()` (as the
/// `criterion_group!` macro does).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into_label(), None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- {name}");
        BenchmarkGroup { _criterion: self, name, throughput: None }
    }
}

/// A group of related benchmarks sharing a throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.throughput, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups, then emitting the
/// `BENCH_JSON` summary (if requested via the environment).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::new("f", "n=1"), |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }

    #[test]
    fn labels_render() {
        assert_eq!(BenchmarkId::new("sort", "n=10").into_label(), "sort/n=10");
        assert_eq!("plain".into_label(), "plain");
    }

    #[test]
    fn json_summary_writes_and_splices() {
        let path =
            std::env::temp_dir().join(format!("pbs_bench_json_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("BENCH_JSON", &path);
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("json_probe");
        group.throughput(Throughput::Elements(1000));
        group.bench_function("noop", |b| b.iter(|| black_box(3 * 3)));
        group.finish();
        write_json_summary();
        // A second bench process appending must splice into the array.
        write_json_summary();
        std::env::remove_var("BENCH_JSON");
        let s = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(s.starts_with("{\n  \"benchmarks\": ["), "{s}");
        assert!(s.trim_end().ends_with('}'), "{s}");
        assert!(s.contains("\"label\": \"json_probe/noop\""), "{s}");
        assert!(s.contains("\"elements_per_sec\""), "{s}");
        assert!(s.matches("json_probe/noop").count() >= 2, "splice appends: {s}");
    }
}
