//! Offline stand-in for the subset of `proptest` 1.x used by this
//! workspace.
//!
//! See `shims/README.md` for scope. This is purely random property
//! testing: each `proptest!` test runs `ProptestConfig::cases` cases, with
//! inputs drawn from a generator seeded deterministically by
//! `(module path, test name, case index)` — so failures reproduce exactly,
//! but there is no shrinking and no failure-persistence file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Accepted for upstream compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest's defaults.
        ProptestConfig { cases: 256, max_shrink_iters: 1024 }
    }
}

/// A generator of test inputs.
///
/// Mirrors upstream's combinator surface (`prop_map`, `prop_flat_map`)
/// over a plain "draw one value" core instead of a shrinkable value tree.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform produced values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each produced value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical strategy (the argument of [`any`]).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> u32 {
        rng.gen()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen()
    }
}

/// The canonical strategy for `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy modules mirroring `proptest::{collection, option, sample}`.
pub mod prop {
    /// Strategies for collections.
    pub mod collection {
        use super::super::{SizeRange, Strategy};
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::collections::BTreeMap;

        /// Vectors of `size` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// See [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `BTreeMap`s of `size` entries with keys from `key`, values from
        /// `value`. Duplicate keys are re-drawn (bounded attempts), so the
        /// requested size is met whenever the key space allows.
        pub fn btree_map<K: Strategy, V: Strategy>(
            key: K,
            value: V,
            size: impl Into<SizeRange>,
        ) -> BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            BTreeMapStrategy { key, value, size: size.into() }
        }

        /// See [`btree_map`].
        #[derive(Debug, Clone)]
        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: SizeRange,
        }

        impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            type Value = BTreeMap<K::Value, V::Value>;

            fn generate(&self, rng: &mut StdRng) -> BTreeMap<K::Value, V::Value> {
                let target = self.size.pick(rng);
                let mut map = BTreeMap::new();
                let mut attempts = 0usize;
                while map.len() < target && attempts < target * 10 + 100 {
                    map.insert(self.key.generate(rng), self.value.generate(rng));
                    attempts += 1;
                }
                map
            }
        }

        impl SizeRange {
            pub(crate) fn pick(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(self.start..self.end)
            }
        }
    }

    /// Strategies for `Option`.
    pub mod option {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// `Some` with probability 3/4, `None` otherwise (upstream's
        /// default also skews towards `Some`).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
                if rng.gen_bool(0.75) {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }

    /// Strategies for sampling from existing collections.
    pub mod sample {
        use super::super::Arbitrary;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// A stand-in for "an index into a collection of yet-unknown
        /// length": holds entropy, resolved against a length via
        /// [`Index::index`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Index(u64);

        impl Index {
            /// Resolve against a collection of `len` elements.
            /// Panics if `len == 0`, as upstream does.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "cannot index an empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut StdRng) -> Self {
                Index(rng.gen())
            }
        }
    }
}

/// Number-of-elements range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    /// Exclusive.
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { start: n, end: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { start: r.start, end: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { start: *r.start(), end: *r.end() + 1 }
    }
}

/// Deterministic per-(test, case) RNG. FNV-1a over the test's identity,
/// mixed with the case index.
pub fn case_rng(test_id: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, Just, ProptestConfig, Strategy};
}

/// Assert inside a property test (panics with the usual `assert!` message;
/// the shim has no failure-channel distinct from panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///
///     /// Doc comments survive.
///     #[test]
///     fn my_property(x in 0u32..10, y in any::<u64>()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut case_rng = $crate::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut case_rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (1u32..=100).prop_flat_map(|hi| (Just(hi), 1u32..=hi))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0.25f64..=0.75, z in any::<u64>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
            prop_assert_eq!(z, z);
        }

        #[test]
        fn flat_map_dependencies_hold((hi, lo) in pair()) {
            prop_assert!(lo <= hi);
        }

        #[test]
        fn collections_sized(v in prop::collection::vec(0u64..5, 2..9),
                             m in prop::collection::btree_map(any::<u64>(), 0u64..3, 1..6),
                             idx in any::<prop::sample::Index>(),
                             opt in prop::option::of(1u32..4)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!((1..6).contains(&m.len()));
            prop_assert!(idx.index(v.len()) < v.len());
            if let Some(x) = opt {
                prop_assert!((1..4).contains(&x));
            }
        }
    }
}
