//! Offline stand-in for the subset of `rand` 0.8 used by this workspace.
//!
//! See `shims/README.md` for scope and caveats. The API mirrors upstream
//! `rand` closely enough that swapping the real crate back in is a drop-in
//! change: `RngCore` / `Rng` / `SeedableRng` traits, `rngs::StdRng`, and
//! the `gen` / `gen_range` sampling surface.
//!
//! `StdRng` is xoshiro256++ (Blackman & Vigna) seeded through SplitMix64 —
//! a small, fast generator whose statistical quality comfortably exceeds
//! what the Monte-Carlo experiments here can resolve. Streams are stable
//! for a fixed seed, which is the only determinism property the workspace
//! relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: a source of uniform `u64`s.
///
/// Object-safe; latency distributions sample through `&mut dyn RngCore`.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value (top bits of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from a uniform bit stream (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Ranges samplable uniformly (argument type of [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via 128-bit multiply-shift (Lemire's
/// reduction without the rejection step; bias is `< span / 2^64`, orders of
/// magnitude below anything the Monte-Carlo experiments can resolve).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

/// Convenience sampling methods, available on every [`RngCore`]
/// (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Sample a value from the `Standard` distribution
    /// (`f64` → uniform `[0, 1)`, `bool` → fair coin, integers → uniform).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range, e.g. `rng.gen_range(0..n)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not the ChaCha12 generator of upstream `rand` — streams differ, but
    /// the workspace only requires self-consistency for a fixed seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 (Steele et al.) to spread a 64-bit seed over the
            // 256-bit state; guarantees a nonzero state for every seed.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
        for _ in 0..1_000 {
            let v = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&v));
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0..100u64);
        assert!(v < 100);
        let _: f64 = dyn_rng.gen();
        let _: bool = dyn_rng.gen();
    }
}
