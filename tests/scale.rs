//! Million-client-scale acceptance tests, instrumented with a counting
//! global allocator so the bytes-per-client budget is *measured*, not
//! estimated.
//!
//! This file holds exactly one tier-1 test (plus an `#[ignore]`d heavy
//! one) so no concurrently running test in the same process pollutes the
//! live-bytes deltas.
//!
//! The `pbs-kvs` and `pbs-workload` library crates `forbid(unsafe_code)`;
//! the allocator shim lives here, in the integration-test crate, which is
//! compiled separately and may use `unsafe` for the `GlobalAlloc` impl.

use pbs::dist::Exponential;
use pbs::kvs::{ClientOptions, Cluster, ClusterOptions, NetworkModel};
use pbs::math::ReplicaConfig;
use pbs::sim::SimTime;
use pbs::workload::{OpMix, Poisson, SharedStream, Zipf};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Wraps the system allocator and tracks live (allocated − freed) bytes.
/// Relaxed counters: the tests below snapshot while single-threaded, and
/// even under the parallel engine the deltas are read only at quiescent
/// points (between `drain_window` calls).
struct CountingAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn bump(size: usize) {
    let live = LIVE.fetch_add(size as u64, Relaxed) + size as u64;
    PEAK.fetch_max(live, Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            bump(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size() as u64, Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_sub(layout.size() as u64, Relaxed);
            bump(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn live_bytes() -> u64 {
    LIVE.load(Relaxed)
}

fn cluster(seed: u64, nodes: u32) -> Cluster {
    let mut opts = ClusterOptions::validation(ReplicaConfig::new(3, 1, 1).unwrap(), seed);
    opts.nodes = nodes;
    opts.op_timeout_ms = 1_000.0;
    let net = NetworkModel::w_ars(
        Arc::new(Exponential::from_mean(10.0)),
        Arc::new(Exponential::from_mean(2.0)),
    );
    Cluster::new(opts, net)
}

/// The hard budget from the issue: steady-state client-table memory must
/// stay at or under 128 bytes per client. The struct-of-arrays layout
/// costs ~106 bytes/client (RNG 32 + pacing 16 + inline op slot 20 +
/// counters/flags 14 + next-op staging 12 + one 16-byte heap arrival
/// entry), so the budget leaves headroom without hiding regressions.
const BYTES_PER_CLIENT_BUDGET: u64 = 128;

fn measure(clients: u32, keys: u64, windows: u32, window_ms: f64, rate_hz: f64) -> (u64, u64) {
    let mut c = cluster(97, 8);
    let copts = ClientOptions { op_timeout_ms: 1_000.0, ..ClientOptions::default() };
    let source = Arc::new(SharedStream::new(
        Poisson::per_second(rate_hz),
        Zipf::new(keys, 0.99),
        OpMix::new(0.8),
    ));

    let before = live_bytes();
    c.add_clients_shared(clients, source, copts);
    c.start_clients();
    // Process the StartClient events (they pull each client's first
    // arrival into the table and the scheduler) without issuing any ops.
    c.drain_window(SimTime::from_ms(1e-3));
    let after_tables = live_bytes();
    let table_bytes = after_tables - before;

    let mut issued_some = false;
    for w in 1..=windows {
        let drain = c.drain_window(SimTime::from_ms(w as f64 * window_ms));
        issued_some |= !drain.writes.is_empty() || !drain.reads.is_empty();
    }
    assert!(issued_some, "the run must actually issue operations");
    let stats = c.client_stats();
    assert_eq!(stats.dropped_results, 0, "windows drained promptly; nothing shed");
    assert!(stats.issued > 0);

    // Steady-state growth beyond the tables themselves: session entries,
    // ground truth (watermark-GC'd), drain buffers.
    let steady = live_bytes().saturating_sub(before);
    (table_bytes, steady)
}

/// Tier-1 scale gate: 100k clients fit the per-client budget, and a
/// short steady-state run (sessions + watermark-GC'd ground truth +
/// drain buffers included) stays within 4× of it.
#[test]
fn hundred_thousand_clients_fit_the_byte_budget() {
    let clients = 100_000u32;
    let (table_bytes, steady) = measure(clients, 1_000_000, 4, 250.0, 0.2);
    let per_client = table_bytes / clients as u64;
    assert!(
        per_client <= BYTES_PER_CLIENT_BUDGET,
        "client tables cost {per_client} B/client (budget {BYTES_PER_CLIENT_BUDGET})"
    );
    let steady_per_client = steady / clients as u64;
    assert!(
        steady_per_client <= 4 * BYTES_PER_CLIENT_BUDGET,
        "steady state costs {steady_per_client} B/client"
    );
}

/// The headline number: one million concurrent clients over a ten-million
/// key Zipf universe, within the same per-client budget. Run with
/// `cargo test --release --test scale -- --ignored` (debug builds work
/// but take minutes).
#[test]
#[ignore = "heavy: ~1 GiB peak, run explicitly in release"]
fn one_million_clients_ten_million_keys() {
    let clients = 1_000_000u32;
    let (table_bytes, _steady) = measure(clients, 10_000_000, 4, 100.0, 0.05);
    let per_client = table_bytes / clients as u64;
    assert!(
        per_client <= BYTES_PER_CLIENT_BUDGET,
        "client tables cost {per_client} B/client (budget {BYTES_PER_CLIENT_BUDGET})"
    );
}
