//! Headline experiment for the WGL checker (see `docs/paper-map.md`):
//!
//! * **Strict quorums are linearizable per key** (§3's R+W>N guarantee):
//!   clean open-loop runs at R=W=2, N=3 verify `Linearizable` on every
//!   key, with bit-identical `CheckReport`s (the `LinCheck` included)
//!   from the serial engine and 1/2/4-worker PDES runs.
//! * **Partial-quorum violation windows track PBS t-visibility**: an
//!   R=W=1 run under load yields nonzero violation windows whose p90
//!   duration lands inside a tolerance band of the p90 predicted by the
//!   WARS t-visibility curve — the measured window *is* the paper's `t`
//!   (time from the missed write's commit to the stale read's start), so
//!   the independently-simulated predictor curve must describe its
//!   distribution.
//! * **Timed-out writes are possibly committed** end-to-end: an
//!   engineered client timeout whose write lands anyway must agree across
//!   the online labels, `relabel_reads`, and the WGL checker — nobody
//!   calls the late-materializing version stale or phantom.

use pbs::dist::{Constant, Exponential, Pareto};
use pbs::kvs::checker::{check_run, CheckReport};
use pbs::kvs::cluster::{Cluster, ClusterOptions, EngineKind};
use pbs::kvs::{
    run_open_loop_checked_on, ClientOptions, NetworkModel, OpenLoopOptions, OpenLoopReport,
};
use pbs::math::ReplicaConfig;
use pbs::sim::SimTime;
use pbs::wars::production::exponential_model;
use pbs::wars::TVisibility;
use pbs::workload::{OpMix, OpSource, OpStream, Poisson, UniformKeys};
use std::sync::Arc;

/// Heavy-tailed legs with a positive support minimum, as the parallel
/// engine requires (lookahead = the 0.8 ms A/R/S scale).
fn pareto_net() -> NetworkModel {
    NetworkModel::w_ars(Arc::new(Pareto::new(1.5, 1.2)), Arc::new(Pareto::new(0.8, 2.0)))
}

fn source(rate: f64, keys: u64) -> Box<dyn OpSource> {
    Box::new(OpStream::new(Poisson::per_second(rate), UniformKeys::new(keys), OpMix::new(0.5), 1))
}

/// One checked open-loop run at the given replication on the given
/// engine.
fn checked_run(
    kind: EngineKind,
    cfg: ReplicaConfig,
    net: &NetworkModel,
    seed: u64,
) -> (OpenLoopReport, CheckReport) {
    let mut o = ClusterOptions::validation(cfg, seed);
    o.nodes = 8;
    o.op_timeout_ms = 2_000.0;
    let engine = OpenLoopOptions::new(1_200.0, 300.0, 1_500.0);
    run_open_loop_checked_on(
        kind,
        o,
        net,
        &engine,
        6,
        ClientOptions { op_timeout_ms: 2_000.0, ..ClientOptions::default() },
        |_| source(30.0, 8),
        |_| {},
        false,
    )
    .expect("positive-minimum model partitions cleanly")
}

/// §3's strong guarantee, verified rather than assumed: every key of a
/// clean R+W>N run is linearizable, on the serial engine and at 1/2/4
/// PDES workers — and because the parallel histories are bit-identical,
/// the whole `CheckReport` (violation windows included) matches the
/// serial one exactly.
#[test]
fn strict_quorum_runs_verify_linearizable_per_key_across_engines() {
    let cfg = ReplicaConfig::new(3, 2, 2).unwrap();
    let net = pareto_net();
    for workers in [1usize, 2, 4] {
        let (serial_report, serial_check) =
            checked_run(EngineKind::SerialPartitioned { workers }, cfg, &net, 61);
        let (par_report, par_check) =
            checked_run(EngineKind::Parallel { workers }, cfg, &net, 61);
        assert_eq!(serial_report, par_report, "{workers}-worker counters diverged");
        assert_eq!(serial_check, par_check, "{workers}-worker CheckReport diverged");
        assert!(serial_check.is_clean(), "audit unclean: {serial_check:?}");
        assert!(
            serial_check.lin.all_linearizable(),
            "R+W>N must be linearizable per key: {:?}",
            serial_check.lin
        );
        assert!(serial_check.lin.keys_checked >= 8, "workload too small to be meaningful");
        assert!(serial_check.lin.ops_checked > 100);
        assert_eq!(serial_check.lin.exhausted_keys, 0, "budget must suffice on clean runs");
    }
}

/// The same engine and load at R=W=1 must *not* be linearizable — the
/// checker's partial-quorum violations are the paper's premise, and they
/// deliberately do not flip `is_clean()`.
#[test]
fn partial_quorum_runs_violate_linearizability_without_failing_is_clean() {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let (_, check) = checked_run(EngineKind::Serial, cfg, &pareto_net(), 61);
    assert!(check.lin.violated_keys > 0, "R=W=1 under load must show staleness: {:?}", check.lin);
    assert!(check.lin.violation_count() > 0);
    assert!(check.is_clean(), "partial-quorum staleness is measured, not flagged: {check:?}");
    assert!(!check.lin.all_linearizable());
}

/// Nearest-rank percentile of the measured windows, in ms.
fn percentile_ms(windows_ns: &mut [u64], pct: f64) -> f64 {
    windows_ns.sort_unstable();
    let rank = ((pct / 100.0) * windows_ns.len() as f64).ceil() as usize;
    windows_ns[rank.clamp(1, windows_ns.len()) - 1] as f64 / 1e6
}

/// The headline number (paper-map row `lin-windows-vs-tvis`): measured
/// violation-window p90 vs. the p90 predicted by composing the WARS
/// t-visibility curve with the run's own write rate.
///
/// Model: a read arriving in steady state sees the newest commit at age
/// `t ~ Exp(λ)` (per-key Poisson writes, PASTA); it becomes a violation
/// with probability `V(t)` (the t-visibility curve's violation side), and
/// when it does, the recorded window *is* `t`. So window durations have
/// density `∝ λe^{-λt}·V(t)`, and the predicted p90 is that density's
/// 0.9-quantile. Monte-Carlo curve, measured λ, and an engine that isn't
/// the predictor's closed-form — a 2× band on p90 is the claim that the
/// two agree on the *distribution*, not just the mean.
#[test]
fn partial_quorum_violation_windows_track_predicted_t_visibility() {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let w_mean_ms = 8.0;
    let ars_mean_ms = 1.0;
    let keys = 4u64;
    let duration_ms = 4_000.0;
    let net = NetworkModel::w_ars(
        Arc::new(Exponential::from_mean(w_mean_ms)),
        Arc::new(Exponential::from_mean(ars_mean_ms)),
    );
    let engine = OpenLoopOptions::new(duration_ms, 500.0, 1_000.0);
    let (report, check) = run_open_loop_checked_on(
        EngineKind::Serial,
        ClusterOptions::validation(cfg, 4242),
        &net,
        &engine,
        6,
        ClientOptions::default(),
        |_| source(40.0, keys),
        |_| {},
        false,
    )
    .expect("serial engine accepts any model");
    assert!(check.is_clean(), "audit unclean: {check:?}");

    let mut windows: Vec<u64> =
        check.lin.violations.iter().map(|v| v.window_ns()).collect();
    assert!(
        windows.len() >= 30,
        "R=W=1 under load must yield a measurable violation population, got {}",
        windows.len()
    );
    let measured_p90 = percentile_ms(&mut windows, 90.0);
    assert_eq!(
        check.lin.window_percentile_ms(90.0),
        Some(measured_p90),
        "LinCheck's own quantile must agree with the raw windows"
    );

    // Per-key commit rate measured from the run itself (ms⁻¹).
    let lambda = report.commits as f64 / keys as f64 / duration_ms;
    assert!(lambda > 0.0);
    let tv = TVisibility::simulate(
        &exponential_model(cfg, 1.0 / w_mean_ms, 1.0 / ars_mean_ms),
        60_000,
        4242,
    );
    // Predicted window density ∝ λe^{-λt}·V(t): integrate to its p90.
    let dt = 0.05;
    let steps = 8_000; // out to 400 ms, far past both decay scales
    let mass: Vec<f64> = (0..steps)
        .map(|i| {
            let t = (i as f64 + 0.5) * dt;
            lambda * (-lambda * t).exp() * tv.violation(t) * dt
        })
        .collect();
    let total: f64 = mass.iter().sum();
    assert!(total > 0.0, "predictor says violations are impossible?");
    let mut acc = 0.0;
    let mut predicted_p90 = steps as f64 * dt;
    for (i, m) in mass.iter().enumerate() {
        acc += m;
        if acc >= 0.9 * total {
            predicted_p90 = (i as f64 + 1.0) * dt;
            break;
        }
    }
    assert!(
        measured_p90 >= predicted_p90 / 2.0 && measured_p90 <= predicted_p90 * 2.0,
        "measured window p90 {measured_p90:.2} ms outside the 2x band of predicted \
         {predicted_p90:.2} ms (lambda {lambda:.4}/ms, {} windows)",
        windows.len()
    );
}

/// Satellite regression (`finish: None` end-to-end): a client-timed-out
/// write whose version lands on the replicas *after* the timeout must be
/// treated as possibly-committed by every layer. The online ground truth
/// never saw a commit, so the later read of that version is labelled
/// consistent; `relabel_reads` rebuilds commits the same way and agrees;
/// the order oracle stands down on the incomplete key; and the WGL
/// checker attributes the orphan version to the open-interval write
/// instead of convicting the read.
#[test]
fn engineered_timeout_write_agrees_across_relabel_and_wgl() {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let mut o = ClusterOptions::validation(cfg, 7);
    o.op_timeout_ms = 50.0; // client gives up at 50 ms...
    let net = NetworkModel::w_ars(
        Arc::new(Constant::new(200.0)), // ...but the write leg takes 200 ms
        Arc::new(Constant::new(1.0)),
    );
    let mut cluster = Cluster::new(o, net);
    cluster.enable_history();
    let key = 3u64;
    let w = cluster.write_from(0, key);
    assert!(w.commit.is_none(), "engineered timeout: no commit inside 50 ms");
    // The write leg still delivers at ~200 ms; every replica applies it.
    cluster.advance_to(SimTime::from_ms(400.0));
    let r = cluster.read_at_from(0, key, SimTime::from_ms(500.0));
    let seen = r.returned_seq.expect("the timed-out write materialized");
    assert!(
        r.label.expect("completed read is labelled").consistent,
        "ground truth never saw a commit, so the late version cannot be stale"
    );

    let history = cluster.take_history();
    let recorded = &history.ops()[0].op;
    assert!(recorded.finish.is_none() && recorded.seq.is_none() && recorded.commit.is_none());
    let check = check_run(&history, &cluster, false);
    assert_eq!(check.labels.mismatches, 0, "relabel must agree with the online label");
    assert_eq!(check.order.violations(), 0, "incomplete key: phantom rule stands down");
    assert!(
        check.lin.all_linearizable(),
        "WGL must attribute seq {seen} to the possibly-committed write: {:?}",
        check.lin
    );
    assert!(check.is_clean(), "{check:?}");
}
