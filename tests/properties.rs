//! Cross-crate property tests: randomized configurations and latency
//! models must preserve the paper's structural invariants.

use pbs::dist::Exponential;
use pbs::kvs::cluster::{Cluster, ClusterOptions};
use pbs::kvs::NetworkModel;
use pbs::math::{staleness, ReplicaConfig};
use pbs::wars::production::exponential_model;
use pbs::wars::TVisibility;
use proptest::prelude::*;
use std::sync::Arc;

fn any_config(max_n: u32) -> impl Strategy<Value = ReplicaConfig> {
    (2u32..=max_n).prop_flat_map(|n| {
        (Just(n), 1u32..=n, 1u32..=n)
            .prop_map(|(n, r, w)| ReplicaConfig::new(n, r, w).expect("valid"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// WARS t-visibility curves are monotone, bounded by Eq. 1, and invert
    /// correctly — for random configurations and random latency scales.
    #[test]
    fn wars_curve_invariants(cfg in any_config(6), w_mean in 0.5f64..30.0, ars_mean in 0.5f64..10.0) {
        let model = exponential_model(cfg, 1.0 / w_mean, 1.0 / ars_mean);
        let tv = TVisibility::simulate(&model, 6_000, 11);
        let bound = staleness::non_intersection_probability(cfg);
        let mut prev = 0.0;
        for i in 0..12 {
            let t = i as f64 * w_mean;
            let p = tv.prob_consistent(t);
            prop_assert!(p >= prev - 1e-12, "monotone");
            prop_assert!(1.0 - p <= bound + 0.03, "frozen bound");
            prev = p;
        }
        if let Some(t) = tv.t_at_probability(0.9) {
            prop_assert!(tv.prob_consistent(t) >= 0.9);
        }
    }

    /// The live store never violates strict-quorum consistency, regardless
    /// of configuration or latency scales.
    #[test]
    fn kvs_strict_quorum_always_consistent(
        n in 2u32..=5,
        seed in 0u64..1000,
        w_mean in 1.0f64..20.0,
    ) {
        // Derive a strict (R, W) for this N.
        let r = n / 2 + 1;
        let w = n - r + 1; // R + W = N + 1 > N
        let cfg = ReplicaConfig::new(n, r, w).expect("valid strict config");
        prop_assert!(cfg.is_strict());
        let mut cluster = Cluster::new(
            ClusterOptions::validation(cfg, seed),
            NetworkModel::w_ars(
                Arc::new(Exponential::from_mean(w_mean)),
                Arc::new(Exponential::from_mean(1.0)),
            ),
        );
        for key in 0..10u64 {
            let wr = cluster.write(key);
            let commit = wr.commit.expect("writes commit");
            let rd = cluster.read_at(key, commit);
            prop_assert!(rd.consistent(), "stale read on {cfg} key {key}");
            prop_assert_eq!(rd.returned_seq, Some(wr.seq));
        }
    }

    /// Timestamp versioning: sequential writes to one key return strictly
    /// increasing sequence numbers (the write-start instant + 1), and a
    /// full-quorum read sees the last.
    #[test]
    fn kvs_versions_monotone(seed in 0u64..1000) {
        let cfg = ReplicaConfig::new(3, 3, 1).unwrap();
        let mut cluster = Cluster::new(
            ClusterOptions::validation(cfg, seed),
            NetworkModel::w_ars(
                Arc::new(Exponential::from_mean(3.0)),
                Arc::new(Exponential::from_mean(1.0)),
            ),
        );
        let mut prev = 0;
        for _ in 0..8 {
            let w = cluster.write(5);
            prop_assert_eq!(w.seq, w.start.as_nanos() + 1);
            prop_assert!(w.seq > prev, "write-start timestamps strictly increase");
            prev = w.seq;
        }
        // R = N read after settling sees the newest version.
        let settle = cluster.now() + pbs::sim::SimDuration::from_ms(1_000.0);
        cluster.advance_to(settle);
        let r = cluster.read(5);
        prop_assert_eq!(r.returned_seq, Some(prev));
    }

    /// Monotonic-reads violation never exceeds the plain non-intersection
    /// probability and decreases as the client reads more often.
    #[test]
    fn monotonic_reads_ordering(cfg in any_config(8), gw in 0.01f64..100.0) {
        let slow_reader = staleness::monotonic_reads_violation(cfg, gw, 0.1);
        let fast_reader = staleness::monotonic_reads_violation(cfg, gw, 100.0);
        let eq1 = staleness::non_intersection_probability(cfg);
        prop_assert!(slow_reader <= fast_reader + 1e-12);
        prop_assert!(fast_reader <= eq1 + 1e-12);
    }
}
