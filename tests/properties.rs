//! Cross-crate property tests: randomized configurations and latency
//! models must preserve the paper's structural invariants.

use pbs::dist::{Exponential, Pareto};
use pbs::kvs::cluster::{Cluster, ClusterOptions, EngineKind};
use pbs::kvs::{
    run_open_loop_checked_on, CheckReport, ClientOptions, NetworkModel, OpenLoopOptions,
};
use pbs::math::{staleness, ReplicaConfig};
use pbs::wars::production::exponential_model;
use pbs::wars::TVisibility;
use pbs::workload::{OpMix, OpSource, OpStream, Poisson, UniformKeys};
use proptest::prelude::*;
use std::sync::Arc;

fn any_config(max_n: u32) -> impl Strategy<Value = ReplicaConfig> {
    (2u32..=max_n).prop_flat_map(|n| {
        (Just(n), 1u32..=n, 1u32..=n)
            .prop_map(|(n, r, w)| ReplicaConfig::new(n, r, w).expect("valid"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// WARS t-visibility curves are monotone, bounded by Eq. 1, and invert
    /// correctly — for random configurations and random latency scales.
    #[test]
    fn wars_curve_invariants(cfg in any_config(6), w_mean in 0.5f64..30.0, ars_mean in 0.5f64..10.0) {
        let model = exponential_model(cfg, 1.0 / w_mean, 1.0 / ars_mean);
        let tv = TVisibility::simulate(&model, 6_000, 11);
        let bound = staleness::non_intersection_probability(cfg);
        let mut prev = 0.0;
        for i in 0..12 {
            let t = i as f64 * w_mean;
            let p = tv.prob_consistent(t);
            prop_assert!(p >= prev - 1e-12, "monotone");
            prop_assert!(1.0 - p <= bound + 0.03, "frozen bound");
            prev = p;
        }
        if let Some(t) = tv.t_at_probability(0.9) {
            prop_assert!(tv.prob_consistent(t) >= 0.9);
        }
    }

    /// The live store never violates strict-quorum consistency, regardless
    /// of configuration or latency scales.
    #[test]
    fn kvs_strict_quorum_always_consistent(
        n in 2u32..=5,
        seed in 0u64..1000,
        w_mean in 1.0f64..20.0,
    ) {
        // Derive a strict (R, W) for this N.
        let r = n / 2 + 1;
        let w = n - r + 1; // R + W = N + 1 > N
        let cfg = ReplicaConfig::new(n, r, w).expect("valid strict config");
        prop_assert!(cfg.is_strict());
        let mut cluster = Cluster::new(
            ClusterOptions::validation(cfg, seed),
            NetworkModel::w_ars(
                Arc::new(Exponential::from_mean(w_mean)),
                Arc::new(Exponential::from_mean(1.0)),
            ),
        );
        for key in 0..10u64 {
            let wr = cluster.write(key);
            let commit = wr.commit.expect("writes commit");
            let rd = cluster.read_at(key, commit);
            prop_assert!(rd.consistent(), "stale read on {cfg} key {key}");
            prop_assert_eq!(rd.returned_seq, Some(wr.seq));
        }
    }

    /// Timestamp versioning: sequential writes to one key return strictly
    /// increasing sequence numbers (the write-start instant + 1), and a
    /// full-quorum read sees the last.
    #[test]
    fn kvs_versions_monotone(seed in 0u64..1000) {
        let cfg = ReplicaConfig::new(3, 3, 1).unwrap();
        let mut cluster = Cluster::new(
            ClusterOptions::validation(cfg, seed),
            NetworkModel::w_ars(
                Arc::new(Exponential::from_mean(3.0)),
                Arc::new(Exponential::from_mean(1.0)),
            ),
        );
        let mut prev = 0;
        for _ in 0..8 {
            let w = cluster.write(5);
            prop_assert_eq!(w.seq, w.start.as_nanos() + 1);
            prop_assert!(w.seq > prev, "write-start timestamps strictly increase");
            prev = w.seq;
        }
        // R = N read after settling sees the newest version.
        let settle = cluster.now() + pbs::sim::SimDuration::from_ms(1_000.0);
        cluster.advance_to(settle);
        let r = cluster.read(5);
        prop_assert_eq!(r.returned_seq, Some(prev));
    }

    /// Monotonic-reads violation never exceeds the plain non-intersection
    /// probability and decreases as the client reads more often.
    #[test]
    fn monotonic_reads_ordering(cfg in any_config(8), gw in 0.01f64..100.0) {
        let slow_reader = staleness::monotonic_reads_violation(cfg, gw, 0.1);
        let fast_reader = staleness::monotonic_reads_violation(cfg, gw, 100.0);
        let eq1 = staleness::non_intersection_probability(cfg);
        prop_assert!(slow_reader <= fast_reader + 1e-12);
        prop_assert!(fast_reader <= eq1 + 1e-12);
    }
}

/// A small checked open-loop run on the given engine.
fn lin_run(kind: EngineKind, cfg: ReplicaConfig, net: &NetworkModel, seed: u64) -> CheckReport {
    let mut o = ClusterOptions::validation(cfg, seed);
    o.nodes = 6;
    let engine = OpenLoopOptions::new(800.0, 400.0, 1_000.0);
    let source = |_: u32| -> Box<dyn OpSource> {
        Box::new(OpStream::new(Poisson::per_second(25.0), UniformKeys::new(8), OpMix::new(0.5), 1))
    };
    run_open_loop_checked_on(
        kind,
        o,
        net,
        &engine,
        4,
        ClientOptions::default(),
        source,
        |_| {},
        false,
    )
    .expect("model partitions cleanly")
    .1
}

/// Property over the seed space, run as a *fixed* sweep rather than a
/// proptest draw: Dynamo-style R+W>N quorums are regular, not strictly
/// atomic — a read racing an in-flight write can legally invert — so a
/// freshly-randomized seed each run could flake on behaviour that is not
/// a bug. 64 fixed seeds × every strict majority config for N ≤ 5, no
/// faults, serial engine: every key must verify `Linearizable`.
#[test]
fn strict_quorum_open_loop_linearizable_across_64_seeds() {
    let net = NetworkModel::w_ars(
        Arc::new(Exponential::from_mean(4.0)),
        Arc::new(Exponential::from_mean(1.0)),
    );
    for seed in 0..64u64 {
        let n = 2 + (seed % 4) as u32; // N in 2..=5, majority R, matching W
        let r = n / 2 + 1;
        let cfg = ReplicaConfig::new(n, r, n - r + 1).expect("valid strict config");
        assert!(cfg.is_strict());
        let check = lin_run(EngineKind::Serial, cfg, &net, seed);
        assert!(check.is_clean(), "seed {seed} {cfg}: {check:?}");
        assert!(
            check.lin.all_linearizable(),
            "seed {seed} {cfg} not linearizable: {:?}",
            check.lin
        );
        assert!(check.lin.ops_checked > 0, "seed {seed}: empty history proves nothing");
    }
}

/// The checker is deterministic across PDES parallelism: 1-worker and
/// 4-worker runs of the same seed produce bitwise-identical `LinCheck`s
/// (violation windows included), on both partitioned engines.
#[test]
fn lin_check_identical_across_pdes_worker_counts() {
    let cfg = ReplicaConfig::new(3, 2, 2).unwrap();
    // Positive-minimum legs, as the parallel engine's lookahead requires.
    let net = NetworkModel::w_ars(Arc::new(Pareto::new(1.5, 1.2)), Arc::new(Pareto::new(0.8, 2.0)));
    for seed in [3u64, 17] {
        let base = lin_run(EngineKind::SerialPartitioned { workers: 1 }, cfg, &net, seed);
        for kind in [
            EngineKind::SerialPartitioned { workers: 4 },
            EngineKind::Parallel { workers: 1 },
            EngineKind::Parallel { workers: 4 },
        ] {
            let other = lin_run(kind, cfg, &net, seed);
            assert_eq!(base.lin, other.lin, "seed {seed} {kind:?} diverged");
            assert_eq!(base, other, "seed {seed} {kind:?}: full report diverged");
        }
    }
}
