//! End-to-end consistency invariants of the Dynamo-style store, including
//! the read-repair and hinted-handoff ablations DESIGN.md calls out.
//! Mixed-traffic cases run on the open-loop client-actor engine.

use pbs::dist::Exponential;
use pbs::kvs::cluster::{Cluster, ClusterOptions};
use pbs::kvs::experiments::measure_t_visibility;
use pbs::kvs::{run_open_loop, ClientOptions, NetworkModel, OpenLoopOptions};
use pbs::math::ReplicaConfig;
use pbs::workload::{FixedRate, OpMix, OpSource, OpStream, UniformKeys};
use std::sync::Arc;

fn net(w_mean: f64, ars_mean: f64) -> NetworkModel {
    NetworkModel::w_ars(
        Arc::new(Exponential::from_mean(w_mean)),
        Arc::new(Exponential::from_mean(ars_mean)),
    )
}

/// R + W > N ⇒ zero staleness, for every strict configuration at N=3, even
/// at t = 0 with adversarial (slow-write) latencies.
#[test]
fn strict_quorums_are_never_stale() {
    for (r, w) in [(1u32, 3u32), (2, 2), (3, 1), (3, 3), (2, 3)] {
        let cfg = ReplicaConfig::new(3, r, w).unwrap();
        let mut cluster = Cluster::new(ClusterOptions::validation(cfg, 31), net(20.0, 1.0));
        let m = measure_t_visibility(&mut cluster, 1, &[0.0], 500, 0.0);
        assert_eq!(
            m.points[0].probability(),
            1.0,
            "strict R={r},W={w} returned stale data"
        );
    }
}

/// Partial quorums converge: staleness at t=0 is substantial with slow
/// writes, and vanishes by t ≫ the write tail.
#[test]
fn partial_quorums_converge() {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let mut cluster = Cluster::new(ClusterOptions::validation(cfg, 32), net(10.0, 1.0));
    let m = measure_t_visibility(&mut cluster, 1, &[0.0, 100.0], 1_500, 0.0);
    assert!(m.points[0].probability() < 0.9);
    assert!(m.points[1].probability() > 0.99);
}

/// Read repair ablation: with lossy write propagation and repeated reads of
/// the same keys, enabling read repair must improve consistency. Traffic is
/// open-loop: one write per 5 keys per 35 ms with six reads between writes,
/// generated lazily by an in-sim client.
#[test]
fn read_repair_improves_consistency_under_loss() {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let run = |read_repair: bool| {
        let mut opts = ClusterOptions::validation(cfg, 33);
        opts.drop_prob = 0.35; // writes frequently miss replicas outright
        opts.read_repair = read_repair;
        opts.op_timeout_ms = 10_000.0;
        let engine = OpenLoopOptions::new(5_250.0, 1_000.0, opts.op_timeout_ms);
        let report = run_open_loop(
            opts,
            &net(2.0, 1.0),
            &engine,
            1,
            ClientOptions { op_timeout_ms: opts.op_timeout_ms, ..ClientOptions::default() },
            |_| -> Box<dyn OpSource> {
                Box::new(OpStream::new(
                    FixedRate::new(5.0),
                    UniformKeys::new(5),
                    OpMix::new(6.0 / 7.0),
                    1,
                ))
            },
            |_| {},
        );
        assert!(report.reads > 500, "enough labelled reads to compare");
        report.consistency_rate()
    };
    let without = run(false);
    let with = run(true);
    assert!(
        with > without + 0.02,
        "read repair should help under loss: with={with} without={without}"
    );
}

/// Hinted-handoff ablation: a replica that was down during a write burst
/// catches up via hints after recovery; without hints (and without read
/// repair or anti-entropy) it stays behind indefinitely.
///
/// Note hints do not change *commit* availability here — with N=3 and W=2
/// the two healthy replicas still form the quorum; what hints provide is
/// convergence of the crashed replica (Dynamo §4.6).
#[test]
fn hinted_handoff_heals_crashed_replica() {
    let cfg = ReplicaConfig::new(3, 1, 2).unwrap();
    let keys: Vec<u64> = (0..12).collect();
    let run = |hinted: bool| -> usize {
        let mut opts = ClusterOptions::validation(cfg, 34);
        opts.hinted_handoff = hinted;
        opts.hint_timeout_ms = 50.0;
        opts.hint_flush_interval_ms = 100.0;
        let mut cluster = Cluster::new(opts, net(2.0, 1.0));
        // Node 1 is down for the whole write burst.
        cluster.crash_node_at(1, pbs::sim::SimTime::from_ms(0.0), 3_000.0);
        cluster.advance_to(pbs::sim::SimTime::from_ms(10.0));
        let mut latest = std::collections::HashMap::new();
        for &key in &keys {
            // Healthy coordinator (node 1 would drop client requests).
            let w = cluster.write_from(0, key);
            assert!(w.commit.is_some(), "two healthy replicas still commit W=2");
            latest.insert(key, w.seq);
        }
        // Recovery + generous settle for hint flushes.
        let settle = cluster.now() + pbs::sim::SimDuration::from_ms(10_000.0);
        cluster.advance_to(settle);
        keys.iter()
            .filter(|&&key| {
                cluster.ring().is_replica(key, 1)
                    && cluster.node(1).stored_version(key).map(|v| v.seq) == latest.get(&key).copied()
            })
            .count()
    };
    let caught_up_without = run(false);
    let caught_up_with = run(true);
    assert!(
        caught_up_with > caught_up_without,
        "hints must heal the crashed replica: with={caught_up_with} without={caught_up_without}"
    );
    assert_eq!(caught_up_without, 0, "no healing path exists without hints");
}

/// Dense per-key versions survive concurrent open-loop mixed traffic:
/// every read returns a version that was actually written, and the online
/// (watermark-labelled) ground truth is internally consistent window by
/// window.
#[test]
fn open_loop_labels_are_internally_consistent() {
    let cfg = ReplicaConfig::new(3, 2, 1).unwrap();
    let mut opts = ClusterOptions::validation(cfg, 35);
    opts.op_timeout_ms = 5_000.0;
    let mut cluster = Cluster::new(opts, net(5.0, 1.0));
    for _ in 0..4 {
        cluster.add_client(
            Box::new(OpStream::new(
                FixedRate::new(8.0),
                UniformKeys::new(3),
                OpMix::new(0.75),
                1,
            )),
            ClientOptions { op_timeout_ms: opts.op_timeout_ms, ..ClientOptions::default() },
        );
    }
    cluster.start_clients();
    let mut labelled = 0usize;
    let mut writes = 0usize;
    for window in 1..=8u32 {
        let drain = cluster.drain_window(pbs::sim::SimTime::from_ms(window as f64 * 500.0));
        writes += drain.writes.len();
        for w in &drain.writes {
            assert!(w.commit.is_some(), "reliable network: every write commits");
            assert!(w.seq.unwrap() >= 1, "coordinator sequences are 1-based");
        }
        for r in &drain.reads {
            let label = r.label.expect("reliable network: every read completes");
            labelled += 1;
            if let Some(seq) = r.op.seq {
                assert!(seq >= 1, "returned versions are 1-based");
            }
            if label.consistent {
                assert_eq!(label.versions_behind, 0);
            } else {
                assert!(label.versions_behind >= 1);
            }
        }
    }
    assert!(labelled > 1_000, "got {labelled} labelled reads");
    assert!(writes > 300, "got {writes} writes");
    // The watermark advanced with the drains and nothing is stuck pending.
    assert_eq!(cluster.ground_truth().pending_commits(), 0);
    assert_eq!(cluster.ground_truth().watermark(), pbs::sim::SimTime::from_ms(4_000.0));
}
