//! The §5.2 validation as an automated test: WARS Monte-Carlo predictions
//! must match the live Dynamo-style store within tight error bounds
//! (paper: t-visibility RMSE ≈ 0.28%, latency N-RMSE ≈ 0.48%).

use pbs::dist::stats::{n_rmse, rmse};
use pbs::dist::Exponential;
use pbs::kvs::cluster::{Cluster, ClusterOptions};
use pbs::kvs::experiments::{measure_t_visibility, measure_t_visibility_sharded};
use pbs::kvs::NetworkModel;
use pbs::math::ReplicaConfig;
use pbs::wars::production::exponential_model;
use pbs::wars::TVisibility;
use std::sync::Arc;

fn validate_combo(w_rate: f64, ars_rate: f64, seed: u64) -> (f64, f64) {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let offsets: Vec<f64> = (0..25).map(|i| 1.0 + 8.0 * i as f64).collect();
    let trials_per_offset = 400;

    // Sharded live-store measurement (two independent clusters) against a
    // sharded WARS prediction — both paths run on the pbs-mc runner.
    let measured = measure_t_visibility_sharded(
        ClusterOptions::validation(cfg, seed),
        &NetworkModel::w_ars(
            Arc::new(Exponential::from_rate(w_rate)),
            Arc::new(Exponential::from_rate(ars_rate)),
        ),
        1,
        &offsets,
        trials_per_offset,
        0.0,
        2,
    );
    // Far-offset base seed: `seed ^ i` shard derivation means adjacent
    // base seeds could hand both runs the same shard RNG streams.
    let predicted = TVisibility::simulate_parallel(
        &exponential_model(cfg, w_rate, ars_rate),
        200_000,
        seed + 0x10_000,
        2,
    );

    let measured_p: Vec<f64> = measured.points.iter().map(|p| p.probability()).collect();
    let predicted_p: Vec<f64> =
        measured.points.iter().map(|p| predicted.prob_consistent(p.t_ms)).collect();
    let tvis_rmse = rmse(&predicted_p, &measured_p);

    let pcts: Vec<f64> = (1..=19).map(|i| i as f64 * 5.0).chain([99.0, 99.9]).collect();
    let mut meas = Vec::new();
    let mut pred = Vec::new();
    for &p in &pcts {
        meas.push(measured.read_latency.percentile(p));
        pred.push(predicted.read_latency_percentile(p));
        meas.push(measured.write_latency.percentile(p));
        pred.push(predicted.write_latency_percentile(p));
    }
    (tvis_rmse, n_rmse(&pred, &meas))
}

/// The paper's central validation claim, at reduced scale: predictions and
/// the live store agree to within ~1%.
#[test]
fn wars_predicts_the_live_store() {
    // One slow-write and one fast-write combination from the §5.2 grid.
    for (w_rate, ars_rate) in [(0.05, 0.5), (0.2, 0.1)] {
        let (tvis_rmse, lat_nrmse) = validate_combo(w_rate, ars_rate, 42);
        assert!(
            tvis_rmse < 0.02,
            "t-visibility RMSE too high for Wλ={w_rate}: {tvis_rmse}"
        );
        assert!(
            lat_nrmse < 0.02,
            "latency N-RMSE too high for Wλ={w_rate}: {lat_nrmse}"
        );
    }
}

/// The WAN topology path: a 3-node cluster spread over 3 datacenters with a
/// 75 ms inter-DC penalty must match the analytic `WanModel` (one local
/// replica per operation, independent read/write localities).
#[test]
fn kvs_wan_topology_matches_wan_model() {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let base_w = 3.0; // ms mean
    let base_ars = 0.5;

    // Live store: one node per datacenter.
    let mut cluster = Cluster::new(
        ClusterOptions::validation(cfg, 77),
        NetworkModel::w_ars(
            Arc::new(Exponential::from_mean(base_w)),
            Arc::new(Exponential::from_mean(base_ars)),
        )
        .with_datacenters(vec![0, 1, 2], 75.0),
    );
    let offsets = [0.0, 40.0, 80.0, 120.0];
    let measured = measure_t_visibility(&mut cluster, 4, &offsets, 2_000, 0.0);

    // Analytic WAN model with the same base distributions.
    let model = pbs::wars::WanModel::new(
        cfg,
        "wan-test",
        Arc::new(Exponential::from_mean(base_w)),
        Arc::new(Exponential::from_mean(base_ars)),
        Arc::new(Exponential::from_mean(base_ars)),
        Arc::new(Exponential::from_mean(base_ars)),
        75.0,
    );
    let predicted = TVisibility::simulate(&model, 200_000, 78);

    for (point, &t) in measured.points.iter().zip(&offsets) {
        let m = point.probability();
        let p = predicted.prob_consistent(t);
        assert!((m - p).abs() < 0.04, "t={t}: store {m} vs WanModel {p}");
    }
    // And the signature WAN behaviour: ~1/N immediate consistency.
    let immediate = measured.points[0].probability();
    assert!((immediate - 1.0 / 3.0).abs() < 0.06, "immediate {immediate} ≈ 1/3");
}

/// The store must show the paper's qualitative write-tail effect: slower
/// writes (relative to A=R=S) worsen immediate consistency.
#[test]
fn live_store_write_tail_effect() {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let run = |w_rate: f64| {
        let mut cluster = Cluster::new(
            ClusterOptions::validation(cfg, 7),
            NetworkModel::w_ars(
                Arc::new(Exponential::from_rate(w_rate)),
                Arc::new(Exponential::from_rate(0.5)),
            ),
        );
        let m = measure_t_visibility(&mut cluster, 3, &[0.0], 2_000, 0.0);
        m.points[0].probability()
    };
    let fast = run(4.0);
    let slow = run(0.1);
    assert!(
        fast > slow + 0.2,
        "fast writes {fast} should be far more immediately consistent than slow {slow}"
    );
}
