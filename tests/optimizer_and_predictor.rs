//! Cross-crate tests of the §6 layer: the predictor, the SLA optimizer,
//! and multi-key staleness, driven by the production latency models.

use pbs::dist::Exponential;
use pbs::kvs::cluster::{Cluster, ClusterOptions};
use pbs::kvs::experiments::measure_t_visibility;
use pbs::kvs::NetworkModel;
use pbs::math::ReplicaConfig;
use pbs::predictor::multikey;
use pbs::predictor::sla::{optimize, SlaSpec};
use pbs::predictor::Predictor;
use pbs::wars::production::{lnkd_ssd_model, ymmr_model, ProductionProfile};
use std::sync::Arc;

/// LNKD-SSD meets an aggressive SLA with a fully partial quorum; YMMR's
/// write tail forces more read coverage for the same SLA.
#[test]
fn optimizer_adapts_to_write_tails() {
    let spec = SlaSpec::consistency(0.999, 10.0);
    let ssd = optimize(
        &|cfg| ProductionProfile::LnkdSsd.model(cfg),
        &[3],
        &spec,
        40_000,
        1,
    );
    let best = ssd.best_config().expect("SSD meets the SLA");
    assert_eq!((best.cfg.r(), best.cfg.w()), (1, 1), "SSD should allow R=W=1");

    let ymmr = optimize(
        &|cfg| ProductionProfile::Ymmr.model(cfg),
        &[3],
        &spec,
        40_000,
        1,
    );
    let best = ymmr.best_config().expect("some config qualifies");
    assert!(
        best.cfg.r() + best.cfg.w() > 2,
        "YMMR's seconds-scale write tail cannot satisfy 10ms/99.9% at R=W=1, got {}",
        best.cfg
    );
}

/// The optimizer's winner must actually dominate: no other qualifying
/// config has lower combined latency.
#[test]
fn optimizer_winner_is_minimal() {
    let spec = SlaSpec::consistency(0.99, 50.0);
    let report = optimize(
        &|cfg| ProductionProfile::LnkdDisk.model(cfg),
        &[3],
        &spec,
        30_000,
        2,
    );
    let best = report.best_config().expect("qualifies");
    for e in &report.evaluations {
        if e.meets_sla {
            assert!(best.combined_latency() <= e.combined_latency() + 1e-9);
        }
    }
}

/// Multi-key staleness compounds per the product rule, using a real
/// predictor.
#[test]
fn multikey_product_rule_on_production_model() {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let pred = Predictor::from_model(&lnkd_ssd_model(cfg), 60_000, 3);
    let p1 = pred.prob_consistent(0.5);
    assert!(p1 < 1.0, "need some staleness for the test to bite");
    let p20 = multikey::multikey_consistency_at(&pred, 0.5, 20);
    assert!((p20 - p1.powi(20)).abs() < 1e-12);
    // And the sizing helper inverts it.
    let max_keys = multikey::max_keys_for_target(p1, 0.9).unwrap();
    assert!(p1.powi(max_keys as i32) >= 0.9);
    assert!(p1.powi(max_keys as i32 + 1) < 0.9);
}

/// The full §6 measure→predict loop against the store itself: run the live
/// store with WARS instrumentation on, drain the recorded one-way delays,
/// build a predictor from those *measured samples only*, and check it
/// predicts the store's own t-visibility.
#[test]
fn predictor_from_store_instrumentation_predicts_the_store() {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let mut opts = ClusterOptions::validation(cfg, 55);
    opts.record_leg_samples = true;
    let mut cluster = Cluster::new(
        opts,
        NetworkModel::w_ars(
            Arc::new(Exponential::from_mean(8.0)),
            Arc::new(Exponential::from_mean(1.5)),
        ),
    );

    // Phase 1: production traffic with instrumentation (and measurement).
    let offsets = [0.0, 5.0, 15.0, 40.0];
    let measured = measure_t_visibility(&mut cluster, 9, &offsets, 1_500, 0.0);
    let samples = cluster.drain_leg_samples();
    assert!(samples.len() > 10_000, "instrumentation recorded {}", samples.len());

    // Phase 2: predict purely from the drained samples.
    let predictor =
        Predictor::from_samples(cfg, samples.w, samples.a, samples.r, samples.s, 120_000, 56);

    for (point, &t) in measured.points.iter().zip(&offsets) {
        let measured_p = point.probability();
        let predicted_p = predictor.prob_consistent(t);
        assert!(
            (measured_p - predicted_p).abs() < 0.03,
            "t={t}: store {measured_p} vs predictor-from-instrumentation {predicted_p}"
        );
    }
}

/// Predictor consistency: Monte-Carlo t-visibility is coherent with its own
/// inverse and with the closed-form k-staleness on the same config.
#[test]
fn predictor_metrics_are_coherent() {
    let cfg = ReplicaConfig::new(3, 1, 2).unwrap();
    let pred = Predictor::from_model(&ymmr_model(cfg), 60_000, 4);
    for &p in &[0.5, 0.9, 0.99] {
        if let Some(t) = pred.t_visibility(p) {
            assert!(pred.prob_consistent(t) >= p, "inverse must satisfy the target");
        }
    }
    // Closed-form k-staleness: N=3, R=1, W=2 → p_s = 1/3.
    assert!((pred.prob_within_k_versions(1) - 2.0 / 3.0).abs() < 1e-12);
    assert!(pred.prob_within_k_versions(2) > pred.prob_within_k_versions(1));
}
