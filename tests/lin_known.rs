//! Known-answer battery for the WGL linearizability checker: hand-built
//! micro-histories pinning the classic register cases — exact verdicts
//! *and* exact minimal violating windows.
//!
//! Conventions: versions are `(seq, writer)` with `(0, 0)` = the empty
//! register; a write's interval closes at its **commit** (the instant the
//! W-th ack landed), a read's at its client finish; writes without a
//! commit are possibly-committed (optional, open interval).

use pbs::kvs::checker::lin::{check_lin, check_lin_keys, KeyLinVerdict, LinOptions};
use pbs::kvs::{CompletedOp, OpHistory};
use pbs::sim::SimTime;
use pbs::workload::OpKind;

fn t(ms: f64) -> SimTime {
    SimTime::from_ms(ms)
}

fn ns(ms: f64) -> u64 {
    t(ms).as_nanos()
}

/// A write of version `(seq, 0)`; committed iff `commit` is given
/// (`finish` mirrors `commit` — the blocking-harness shape).
fn write(op_id: u64, key: u64, seq: u64, start: f64, commit: Option<f64>) -> CompletedOp {
    CompletedOp {
        op_id,
        client: 0,
        kind: OpKind::Write,
        key,
        start: t(start),
        finish: commit.map(t),
        seq: Some(seq),
        commit: commit.map(t),
        writer: Some(0),
        source: None,
        quorum_mask: 0,
    }
}

/// A completed read observing `(seq, 0)` (`None` = empty register).
fn read(op_id: u64, key: u64, seq: Option<u64>, start: f64, finish: f64) -> CompletedOp {
    CompletedOp {
        op_id,
        client: 0,
        kind: OpKind::Read,
        key,
        start: t(start),
        finish: Some(t(finish)),
        seq,
        commit: None,
        writer: seq.map(|_| 0),
        source: None,
        quorum_mask: 0,
    }
}

fn history(ops: Vec<CompletedOp>) -> OpHistory {
    let mut h = OpHistory::new();
    for op in ops {
        h.push(op, None);
    }
    h
}

/// A read that begins strictly after a write's commit and still sees the
/// old value is the canonical violation; the minimal window spans from
/// the missed commit to the read's start — the paper's `t`.
#[test]
fn non_overlapping_stale_read_is_rejected_with_t_visibility_window() {
    let h = history(vec![
        write(1, 7, 1, 0.0, Some(5.0)),
        read(2, 7, None, 10.0, 11.0), // saw empty after v1 committed
    ]);
    let keys = check_lin_keys(&h, &LinOptions::default());
    assert_eq!(keys.len(), 1);
    assert_eq!(keys[0].verdict, KeyLinVerdict::Violation);
    assert_eq!(keys[0].violations.len(), 1);
    let v = keys[0].violations[0];
    assert_eq!(v.key, 7);
    assert_eq!(v.op_id, 2, "the stale read is the culprit");
    assert_eq!(v.window_start_ns, ns(5.0), "window opens at the missed commit");
    assert_eq!(v.window_end_ns, ns(10.0), "window closes at the read's start");
    assert_eq!(v.window_ns(), ns(5.0));

    let agg = check_lin(&h, &LinOptions::default());
    assert_eq!(agg.violated_keys, 1);
    assert_eq!(agg.violation_count(), 1);
    assert_eq!(agg.window_percentile_ms(90.0), Some(5.0));
    assert!(!agg.all_linearizable());
}

/// A read overlapping a write in flight may return either the old or the
/// new value: the write's linearization point floats inside its interval.
#[test]
fn concurrent_read_overlapping_a_write_may_return_old_or_new() {
    for seen in [Some(1), Some(2)] {
        let h = history(vec![
            write(1, 7, 1, 0.0, Some(1.0)),
            write(2, 7, 2, 10.0, Some(20.0)),
            read(3, 7, seen, 12.0, 14.0), // entirely inside w2's interval
        ]);
        let agg = check_lin(&h, &LinOptions::default());
        assert!(
            agg.all_linearizable(),
            "read overlapping w2 may see {seen:?}: {agg:?}"
        );
    }
}

/// Two writes with overlapping intervals admit either linearization
/// order — but two *sequential* reads must observe a consistent choice:
/// new-then-old across non-overlapping reads is the classic inversion.
#[test]
fn overlapping_writes_admit_either_order_but_not_an_inversion() {
    for seen in [Some(1), Some(2)] {
        let h = history(vec![
            write(1, 7, 1, 0.0, Some(10.0)),
            write(2, 7, 2, 0.0, Some(10.0)),
            read(3, 7, seen, 20.0, 21.0),
        ]);
        let agg = check_lin(&h, &LinOptions::default());
        assert!(agg.all_linearizable(), "either write may order last: {agg:?}");
    }
    // r1 sees v2, then r2 (after r1 finished) sees v1: no single order
    // of w1/w2 satisfies both. The culprit is r2; its window runs from
    // w2's commit (the newest write r2 missed) to r2's start.
    let h = history(vec![
        write(1, 7, 1, 0.0, Some(10.0)),
        write(2, 7, 2, 0.0, Some(10.0)),
        read(3, 7, Some(2), 20.0, 21.0),
        read(4, 7, Some(1), 30.0, 31.0),
    ]);
    let keys = check_lin_keys(&h, &LinOptions::default());
    assert_eq!(keys[0].verdict, KeyLinVerdict::Violation);
    assert_eq!(keys[0].violations.len(), 1, "removing r2 restores feasibility");
    let v = keys[0].violations[0];
    assert_eq!(v.op_id, 4, "the second (inverted) read is the culprit");
    assert_eq!(v.window_start_ns, ns(10.0));
    assert_eq!(v.window_end_ns, ns(30.0));
    assert_eq!(v.window_ns(), ns(20.0));
}

/// A timed-out write is possibly committed: a later read may see its
/// version (it took effect) or the previous one (it did not) — both
/// linearizable. Reads far *before* it could have started are still
/// protected: a version nothing could have written stays a violation.
#[test]
fn open_interval_timed_out_write_may_or_may_not_have_taken_effect() {
    for seen in [Some(1), Some(11)] {
        let mut wt = write(2, 7, 11, 10.0, None);
        wt.finish = None; // client timed out; version known (blocking path)
        let h = history(vec![
            write(1, 7, 1, 0.0, Some(5.0)),
            wt,
            read(3, 7, seen, 20.0, 21.0),
        ]);
        let agg = check_lin(&h, &LinOptions::default());
        assert!(
            agg.all_linearizable(),
            "timed-out write may or may not be visible (saw {seen:?}): {agg:?}"
        );
    }
    // The open interval never reaches backwards: a read that finished
    // before the timed-out write even started cannot see its version.
    let mut wt = write(2, 7, 11, 10.0, None);
    wt.finish = None;
    let h = history(vec![
        write(1, 7, 1, 0.0, Some(5.0)),
        read(3, 7, Some(11), 6.0, 7.0), // before wt's invocation at 10
        wt,
    ]);
    let keys = check_lin_keys(&h, &LinOptions::default());
    assert_eq!(keys[0].verdict, KeyLinVerdict::Violation);
    assert_eq!(keys[0].violations[0].op_id, 3);
}

/// Open-loop client timeouts lose the version too (`seq: None`): any
/// orphan version a read then returns is attributed to the unknown write
/// rather than convicted — but only when such a write exists.
#[test]
fn unknown_version_timeouts_absorb_orphan_reads() {
    let mut unknown = write(2, 7, 0, 10.0, None);
    unknown.finish = None;
    unknown.seq = None;
    unknown.writer = None;
    let h = history(vec![
        write(1, 7, 1, 0.0, Some(5.0)),
        unknown,
        read(3, 7, Some(12), 20.0, 21.0), // version no recorded write produced
    ]);
    let agg = check_lin(&h, &LinOptions::default());
    assert!(agg.all_linearizable(), "orphan attributed to the unknown write: {agg:?}");

    // Without an unknown write the orphan version is a genuine phantom.
    let h = history(vec![
        write(1, 7, 1, 0.0, Some(5.0)),
        read(3, 7, Some(12), 20.0, 21.0),
    ]);
    let keys = check_lin_keys(&h, &LinOptions::default());
    assert_eq!(keys[0].verdict, KeyLinVerdict::Violation);
    assert_eq!(keys[0].violations[0].op_id, 3);
    // No committed write above (12, 0) precedes the read, so the window
    // falls back to the read's own interval.
    assert_eq!(keys[0].violations[0].window_start_ns, ns(20.0));
    assert_eq!(keys[0].violations[0].window_end_ns, ns(21.0));
}

/// Removing one offender and continuing the prefix scan yields one
/// window per independent anomaly, not one per key.
#[test]
fn multiple_stale_reads_yield_multiple_windows() {
    let h = history(vec![
        write(1, 7, 1, 0.0, Some(5.0)),
        read(2, 7, None, 10.0, 11.0), // missed v1: window [5, 10]
        write(3, 7, 2, 15.0, Some(18.0)),
        read(4, 7, Some(1), 30.0, 31.0), // missed v2: window [18, 30]
        read(5, 7, Some(2), 40.0, 41.0), // fine
    ]);
    let keys = check_lin_keys(&h, &LinOptions::default());
    assert_eq!(keys[0].verdict, KeyLinVerdict::Violation);
    let windows: Vec<(u64, u64)> = keys[0]
        .violations
        .iter()
        .map(|v| (v.window_start_ns, v.window_end_ns))
        .collect();
    assert_eq!(windows, vec![(ns(5.0), ns(10.0)), (ns(18.0), ns(30.0))]);
}

/// Crossing the node budget is `Exhausted` — a distinct, non-failing
/// verdict, never misreported as a violation or a pass.
#[test]
fn budget_exhaustion_is_a_distinct_verdict() {
    // Eight mutually-overlapping committed writes and a read that saw
    // none of them: proving infeasibility must enumerate (subset, last)
    // states, which a 10-node budget cannot.
    let mut ops: Vec<CompletedOp> = (0..8)
        .map(|i| write(i + 1, 7, i + 1, 0.0, Some(100.0)))
        .collect();
    ops.push(read(100, 7, None, 200.0, 201.0));
    let h = history(ops);
    let tiny = LinOptions { max_nodes_per_key: 10, ..Default::default() };
    let keys = check_lin_keys(&h, &tiny);
    assert_eq!(keys[0].verdict, KeyLinVerdict::Exhausted);
    let agg = check_lin(&h, &tiny);
    assert_eq!(agg.exhausted_keys, 1);
    assert_eq!(agg.violated_keys, 0, "exhaustion is not a violation");
    assert!(!agg.all_linearizable(), "but it is not a verified pass either");

    // The default budget settles the same key conclusively.
    let keys = check_lin_keys(&h, &LinOptions::default());
    assert_eq!(keys[0].verdict, KeyLinVerdict::Violation);

    // The op-count ceiling is the same verdict.
    let capped = LinOptions { max_ops_per_key: 3, ..Default::default() };
    assert_eq!(check_lin(&h, &capped).exhausted_keys, 1);
}

/// Keys are independent: a violation on one never bleeds into another,
/// and aggregate counters tally per-key verdicts.
#[test]
fn keys_are_checked_independently() {
    let h = history(vec![
        write(1, 1, 1, 0.0, Some(5.0)),
        read(2, 1, Some(1), 10.0, 11.0), // key 1 clean
        write(3, 2, 1, 0.0, Some(5.0)),
        read(4, 2, None, 10.0, 11.0), // key 2 stale
    ]);
    let agg = check_lin(&h, &LinOptions::default());
    assert_eq!(agg.keys_checked, 2);
    assert_eq!(agg.linearizable_keys, 1);
    assert_eq!(agg.violated_keys, 1);
    assert_eq!(agg.first_violation().map(|v| v.key), Some(2));
}
