//! Acceptance tests for the buggify fault-injection layer and the
//! session-guarantee history checker: seeded chaos runs are bitwise
//! deterministic per `(seed, threads)`, injected faults produce real
//! session violations on which the streaming labels and the offline
//! replay agree, and replicas converge once the storm clears.

use pbs::dist::Exponential;
use pbs::kvs::checker::check_run;
use pbs::kvs::{
    run_open_loop_checked, run_open_loop_sharded, ClientOptions, Cluster, ClusterOptions,
    FaultProfile, FaultSchedule, NetworkModel, OpenLoopOptions, OpenLoopReport, ScheduleSegment,
};
use pbs::math::ReplicaConfig;
use pbs::sim::SimTime;
use pbs::workload::{OpMix, OpSource, OpStream, Poisson, UniformKeys};
use std::sync::Arc;

fn net() -> NetworkModel {
    NetworkModel::w_ars(
        Arc::new(Exponential::from_mean(4.0)),
        Arc::new(Exponential::from_mean(1.5)),
    )
}

fn opts(seed: u64) -> ClusterOptions {
    let mut o = ClusterOptions::validation(ReplicaConfig::new(3, 1, 1).unwrap(), seed);
    o.op_timeout_ms = 1_000.0;
    o
}

fn source(per_sec: f64, keys: u64, read_frac: f64) -> Box<dyn OpSource> {
    Box::new(OpStream::new(
        Poisson::per_second(per_sec),
        UniformKeys::new(keys),
        OpMix::new(read_frac),
        1,
    ))
}

fn storm_sharded(seed: u64, threads: usize) -> OpenLoopReport {
    let engine = OpenLoopOptions::new(2_000.0, 500.0, 1_000.0);
    run_open_loop_sharded(
        opts(seed),
        &net(),
        &engine,
        4,
        ClientOptions { op_timeout_ms: 1_000.0, ..ClientOptions::default() },
        6,
        threads,
        |_, _| source(40.0, 8, 0.5),
        |cluster: &mut Cluster| {
            // Every fault class at once: drop + duplicate + reorder +
            // slow nodes + disk lag + clock skew. The profile seed fixes
            // the per-node traits; per-run variation comes from the run
            // seed driving every message-level roll.
            cluster.network().set_fault_profile(FaultProfile::storm(seed)).unwrap();
        },
    )
}

fn scheduled_sharded(seed: u64, threads: usize, schedule: FaultSchedule) -> OpenLoopReport {
    let engine = OpenLoopOptions::new(2_000.0, 500.0, 1_000.0);
    run_open_loop_sharded(
        opts(seed),
        &net(),
        &engine,
        4,
        ClientOptions { op_timeout_ms: 1_000.0, ..ClientOptions::default() },
        6,
        threads,
        |_, _| source(40.0, 8, 0.5),
        move |cluster: &mut Cluster| {
            cluster.network().set_fault_schedule(schedule.clone()).unwrap();
        },
    )
}

fn plain_sharded(seed: u64, threads: usize) -> OpenLoopReport {
    let engine = OpenLoopOptions::new(2_000.0, 500.0, 1_000.0);
    run_open_loop_sharded(
        opts(seed),
        &net(),
        &engine,
        4,
        ClientOptions { op_timeout_ms: 1_000.0, ..ClientOptions::default() },
        6,
        threads,
        |_, _| source(40.0, 8, 0.5),
        |_| {},
    )
}

/// The full storm is bit-reproducible per `(seed, threads)` — the
/// FoundationDB-style contract that makes a chaos failure replayable
/// from its seed alone.
#[test]
fn storm_runs_are_bitwise_deterministic_per_seed_and_threads() {
    let a1 = storm_sharded(31, 1);
    let b1 = storm_sharded(31, 1);
    assert_eq!(a1, b1, "threads=1 storm must be bit-identical");
    let a4 = storm_sharded(31, 4);
    let b4 = storm_sharded(31, 4);
    assert_eq!(a4, b4, "threads=4 storm must be bit-identical");
    let other = storm_sharded(32, 1);
    assert_ne!(a1, other, "different seeds must differ");
    // The storm visibly bites: some staleness, fewer than all reads clean.
    assert!(a1.reads > 0 && a1.consistent < a1.reads);
}

/// Zero-draw discipline, end to end: a schedule whose active segments
/// are all calm must consume **no** RNG draws beyond the plain transmit
/// path, so the whole run is bit-identical to one with no schedule
/// installed — even when a storm segment exists beyond the run horizon.
#[test]
fn calm_schedule_segments_draw_exactly_like_no_schedule() {
    let plain = plain_sharded(61, 2);
    let calm = scheduled_sharded(61, 2, FaultSchedule::constant(FaultProfile::new(61)));
    assert_eq!(plain, calm, "an all-calm schedule must not perturb a single draw");
    let distant_storm = FaultSchedule::calm_storm_calm(
        FaultProfile::storm(61),
        1.0e9, // far past the run horizon: never active, never drawn from
        2.0e9,
    );
    let distant = scheduled_sharded(61, 2, distant_storm);
    assert_eq!(plain, distant, "inactive storm segments must not perturb a single draw");
}

/// Segment-boundary determinism at the run level: two schedules that
/// agree on every instant the run can reach are interchangeable — extra
/// segments past the horizon are inert — while moving the storm window
/// inside the run visibly changes the outcome.
#[test]
fn schedule_segments_beyond_the_horizon_are_inert() {
    let storm = FaultProfile::storm(67);
    let in_run = FaultSchedule::calm_storm_calm(storm, 500.0, 1_500.0);
    let mut with_tail = in_run.segments().to_vec();
    with_tail.push(ScheduleSegment::new(1.0e7, FaultProfile::storm(999)));
    let a = scheduled_sharded(67, 2, in_run.clone());
    let b = scheduled_sharded(67, 2, FaultSchedule::piecewise(with_tail));
    assert_eq!(a, b, "segments the run never reaches must not change any draw");
    let calm_run = plain_sharded(67, 2);
    assert_ne!(a, calm_run, "the in-run storm window must actually bite");
    assert!(a.reads > 0 && a.consistent < a.reads);
}

/// A scheduled storm keeps the bitwise-reproducibility contract per
/// `(seed, threads)`, exactly like a constant profile.
#[test]
fn scheduled_storm_runs_are_bitwise_deterministic_per_seed_and_threads() {
    let schedule = |seed: u64| FaultSchedule::calm_storm_calm(FaultProfile::storm(seed), 400.0, 1_600.0);
    let a1 = scheduled_sharded(71, 1, schedule(71));
    let b1 = scheduled_sharded(71, 1, schedule(71));
    assert_eq!(a1, b1, "threads=1 scheduled storm must be bit-identical");
    let a4 = scheduled_sharded(71, 4, schedule(71));
    let b4 = scheduled_sharded(71, 4, schedule(71));
    assert_eq!(a4, b4, "threads=4 scheduled storm must be bit-identical");
    let other = scheduled_sharded(72, 1, schedule(72));
    assert_ne!(a1, other, "different seeds must differ");
    assert!(a1.reads > 0 && a1.consistent < a1.reads, "the storm window must bite");
}

/// Injected faults at R=W=1 produce genuine session-guarantee violations,
/// and the two independent derivations — streaming per-client counters
/// and the offline history replay — agree on every one of them, with
/// zero online-label mismatches.
#[test]
fn injected_faults_cause_violations_both_oracles_agree_on() {
    let engine = OpenLoopOptions::new(3_000.0, 500.0, 2_000.0);
    let (report, check) = run_open_loop_checked(
        opts(37),
        &net(),
        &engine,
        4,
        ClientOptions { op_timeout_ms: 1_000.0, ..ClientOptions::default() },
        |_| source(60.0, 4, 0.5),
        |cluster| {
            cluster.network().set_fault_profile(FaultProfile::storm(37)).unwrap();
        },
        false,
    );
    assert!(
        report.monotonic_violations + report.ryw_violations > 0,
        "the storm at R=W=1 must break session guarantees: {report:?}"
    );
    assert!(check.sessions.agrees(), "streaming vs offline replay diverged: {check:?}");
    assert_eq!(
        check.sessions.monotonic_violations, report.monotonic_violations,
        "engine report and checker must count the same violations"
    );
    assert_eq!(check.sessions.ryw_violations, report.ryw_violations);
    assert_eq!(check.labels.mismatches, 0, "online labels must survive the offline recount");
    assert!(check.labels.stale_reads > 0, "faults must produce stale reads");
    assert!(check.is_clean());
}

/// Read repair + hinted handoff + anti-entropy actually converge the
/// replicas once the storm clears and traffic quiesces — checked per key
/// against the newest committed version.
#[test]
fn replicas_converge_after_the_storm_clears() {
    let mut o = opts(23);
    o.op_timeout_ms = 500.0;
    o.read_repair = true;
    o.hinted_handoff = true;
    o.sync_interval_ms = Some(250.0);
    let mut cluster = Cluster::new(o, net());
    cluster.enable_history();
    cluster.network().set_fault_profile(FaultProfile::storm(23)).unwrap();
    cluster.add_client(
        source(80.0, 8, 0.5),
        ClientOptions { op_timeout_ms: 500.0, ..ClientOptions::default() },
    );
    cluster.start_clients();
    // Storm phase: 2s of traffic under every fault class.
    cluster.drain_window(SimTime::from_ms(1_000.0));
    cluster.drain_window(SimTime::from_ms(2_000.0));
    cluster.network().clear_fault_profile();
    // Clean phase, then quiescence: several anti-entropy rounds run with
    // no faults and no traffic.
    cluster.drain_window(SimTime::from_ms(3_000.0));
    cluster.stop_clients();
    cluster.drain_window(SimTime::from_ms(6_000.0));
    let history = cluster.take_history();
    let check = check_run(&history, &cluster, true);
    assert!(check.sessions.agrees(), "{check:?}");
    assert_eq!(check.labels.mismatches, 0);
    let conv = check.convergence.expect("convergence was requested");
    assert!(conv.keys_checked > 0);
    assert!(
        conv.converged(),
        "live replicas must agree after the storm clears: {conv:?}"
    );
    assert!(check.is_clean());
}
