//! Acceptance tests for the open-loop concurrency engine: client scale,
//! memory-boundedness, `pbs-mc` determinism, and predictor tracking.

use pbs::dist::Exponential;
use pbs::kvs::{
    run_open_loop, run_open_loop_sharded, ClientOptions, Cluster, ClusterOptions, EngineKind,
    NetworkModel, OpenLoopOptions, OpenLoopReport,
};
use pbs::math::ReplicaConfig;
use pbs::predictor::Predictor;
use pbs::sim::SimTime;
use pbs::wars::IidModel;
use pbs::workload::{OpMix, OpSource, OpStream, Poisson, SharedStream, UniformKeys};
use std::sync::Arc;

const W_MEAN_MS: f64 = 10.0;
const ARS_MEAN_MS: f64 = 2.0;

fn net() -> NetworkModel {
    NetworkModel::w_ars(
        Arc::new(Exponential::from_mean(W_MEAN_MS)),
        Arc::new(Exponential::from_mean(ARS_MEAN_MS)),
    )
}

fn opts(seed: u64, op_timeout_ms: f64) -> ClusterOptions {
    let mut o = ClusterOptions::validation(ReplicaConfig::new(3, 1, 1).unwrap(), seed);
    o.op_timeout_ms = op_timeout_ms;
    o
}

fn poisson_source(per_client_per_sec: f64, keys: u64, read_frac: f64) -> Box<dyn OpSource> {
    Box::new(OpStream::new(
        Poisson::per_second(per_client_per_sec),
        UniformKeys::new(keys),
        OpMix::new(read_frac),
        1,
    ))
}

/// ≥ 10k concurrent clients: the engine sustains them in one simulation
/// with every client live (in-sim actor + lazy arrivals) and zero sheds.
#[test]
fn sustains_ten_thousand_clients() {
    let engine = OpenLoopOptions::new(3_000.0, 1_000.0, 1_000.0);
    let report = run_open_loop(
        opts(41, 1_000.0),
        &net(),
        &engine,
        10_000,
        ClientOptions { op_timeout_ms: 1_000.0, ..ClientOptions::default() },
        |_| poisson_source(1.0, 256, 0.6),
        |_| {},
    );
    // 10k clients × 1 op/s × 3 s ≈ 30k ops.
    assert!(report.issued > 25_000, "issued {}", report.issued);
    assert_eq!(report.shed, 0);
    assert_eq!(report.failed_writes, 0, "reliable network, generous timeout");
    assert!(report.consistency_rate() > 0.5);
    // The event heap holds one arrival timer per client plus at most one
    // op-timeout window of per-op state — far below the ~30k-op workload,
    // and independent of duration.
    assert!(
        report.peak_pending_events < 25_000,
        "heap should be O(clients + timeout-window), got {}",
        report.peak_pending_events
    );
}

/// The heap is bounded by in-flight work, not workload length: a long
/// workload (~40k ops) over few clients keeps the scheduler queue three
/// orders of magnitude smaller than the op count. The old `run_trace`
/// path pre-injected all ops, so its heap peaked at O(trace).
#[test]
fn event_heap_bounded_by_in_flight_not_workload_length() {
    let engine = OpenLoopOptions::new(20_000.0, 1_000.0, 500.0);
    let report = run_open_loop(
        opts(43, 500.0),
        &net(),
        &engine,
        64,
        ClientOptions { op_timeout_ms: 500.0, ..ClientOptions::default() },
        |_| poisson_source(2_000.0 / 64.0, 64, 0.6),
        |_| {},
    );
    assert!(report.issued > 35_000, "issued {}", report.issued);
    assert!(
        report.peak_pending_events < 3_000,
        "heap {} should be far below the {}-op workload",
        report.peak_pending_events,
        report.issued
    );
    // Coordinators do not accumulate per-op state either: completed ops
    // stream out through the clients' bounded buffers window by window.
    assert_eq!(report.shed, 0);
}

fn sharded(seed: u64, threads: usize) -> OpenLoopReport {
    let engine = OpenLoopOptions::new(2_000.0, 500.0, 1_000.0);
    let mut o = opts(seed, 1_000.0);
    o.seed = seed;
    run_open_loop_sharded(
        o,
        &net(),
        &engine,
        8,
        ClientOptions { op_timeout_ms: 1_000.0, ..ClientOptions::default() },
        8,
        threads,
        |_, _| poisson_source(25.0, 16, 0.6),
        |_| {},
    )
}

/// The whole-workload sharded runner honours the `pbs-mc` determinism
/// contract: bit-identical per `(seed, threads)` — checked at threads=1
/// and threads=4 — and statistically equivalent across thread counts.
#[test]
fn sharded_replication_bitwise_deterministic_and_thread_equivalent() {
    let a1 = sharded(17, 1);
    let b1 = sharded(17, 1);
    assert_eq!(a1, b1, "threads=1 must be bit-reproducible");
    let a4 = sharded(17, 4);
    let b4 = sharded(17, 4);
    assert_eq!(a4, b4, "threads=4 must be bit-reproducible");
    assert_ne!(a1, a4, "thread counts shuffle RNG streams");
    assert!(
        (a1.consistency_rate() - a4.consistency_rate()).abs() < 0.05,
        "thread counts agree statistically: {} vs {}",
        a1.consistency_rate(),
        a4.consistency_rate()
    );
    let rate1 = a1.achieved_ops_per_sec();
    let rate4 = a4.achieved_ops_per_sec();
    assert!((rate1 - rate4).abs() / rate1 < 0.2, "{rate1} vs {rate4}");
}

/// One shared stateless source must reproduce per-client boxed copies of
/// the same stationary source **bit for bit**: identical per-client RNG
/// streams, identical drained windows, identical stats — on the plain
/// serial engine and across a partitioned (multi-table) plan. This is the
/// contract that lets million-client runs drop the per-client box.
#[test]
fn shared_source_reproduces_boxed_clients_bit_for_bit() {
    for kind in [EngineKind::Serial, EngineKind::SerialPartitioned { workers: 2 }] {
        let copts = ClientOptions { op_timeout_ms: 1_000.0, ..ClientOptions::default() };
        let arrivals = Poisson::per_second(20.0);
        let keys = UniformKeys::new(64);
        let mix = OpMix::new(0.6);
        let clients = 24u32;

        let mut boxed = Cluster::with_engine(opts(61, 1_000.0), net(), kind).unwrap();
        for _ in 0..clients {
            boxed.add_client(Box::new(OpStream::new(arrivals, keys, mix, 1)), copts);
        }
        let mut shared = Cluster::with_engine(opts(61, 1_000.0), net(), kind).unwrap();
        shared.add_clients_shared(clients, Arc::new(SharedStream::new(arrivals, keys, mix)), copts);

        boxed.start_clients();
        shared.start_clients();
        for w in 1..=6u32 {
            let until = SimTime::from_ms(w as f64 * 250.0);
            let da = boxed.drain_window(until);
            let db = shared.drain_window(until);
            assert_eq!(da.writes, db.writes, "window {w} writes diverged ({kind:?})");
            assert_eq!(da.reads, db.reads, "window {w} reads diverged ({kind:?})");
        }
        assert_eq!(boxed.client_stats(), shared.client_stats(), "stats diverged ({kind:?})");
        assert!(boxed.client_stats().issued > 50, "the run must actually do work");
    }
}

/// On a stationary low-load segment, measured open-loop consistency tracks
/// the `pbs-predictor` expectation for Poisson write traffic within ±0.05.
#[test]
fn low_load_consistency_tracks_predictor() {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let keys = 16u64;
    let engine = OpenLoopOptions::new(10_000.0, 1_000.0, 2_000.0);
    let report = run_open_loop_sharded(
        opts(29, 2_000.0),
        &net(),
        &engine,
        32,
        ClientOptions { op_timeout_ms: 2_000.0, ..ClientOptions::default() },
        2,
        2,
        |_, _| poisson_source(400.0 / 32.0, keys, 0.5),
        |_| {},
    );
    assert!(report.reads > 3_000);
    let measured = report.consistency_rate();

    let model = IidModel::w_ars(
        cfg,
        "tracking",
        Arc::new(Exponential::from_mean(W_MEAN_MS)),
        Arc::new(Exponential::from_mean(ARS_MEAN_MS)),
    );
    let predictor = Predictor::from_model_threads(&model, 60_000, 7, 2);
    let commit_rate_per_ms =
        report.commits as f64 / report.runs as f64 / engine.duration_ms / keys as f64;
    let predicted = predictor.expected_consistency_under_poisson(commit_rate_per_ms);
    assert!(
        (measured - predicted).abs() <= 0.05,
        "open-loop measurement should track the predictor: measured {measured}, predicted {predicted}"
    );
    // Sanity: this segment is genuinely "low load" — staleness exists but
    // is mild.
    assert!(measured > 0.8 && measured < 1.0, "measured {measured}");
}
