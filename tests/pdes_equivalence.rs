//! Serial-vs-parallel equivalence of the in-cluster simulation.
//!
//! The conservative parallel engine must be **invisible** in the results:
//! a `W`-worker run and a serial run over the same partition plan must
//! produce the identical operation history (diffed through the checker's
//! `OpHistory`) and identical streaming counters, clean or under a
//! buggify storm — and every `(seed, workers)` pair must be bitwise
//! reproducible.

use pbs::dist::{Exponential, Pareto};
use pbs::kvs::checker::{check_run, CheckReport, OpHistory};
use pbs::kvs::cluster::{Cluster, ClusterOptions, EngineKind};
use pbs::kvs::{
    run_open_loop_on, run_open_loop_parallel, ClientOptions, FaultProfile, FaultSchedule,
    NetworkModel, OpenLoopOptions, OpenLoopReport,
};
use pbs::math::ReplicaConfig;
use pbs::sim::PdesError;
use pbs::workload::{OpMix, OpSource, OpStream, Poisson, UniformKeys};
use std::sync::Arc;

/// Heavy-tailed legs with a positive support minimum (Pareto `xm`), as the
/// parallel engine requires: the lookahead is the A/R/S scale, 0.8 ms.
fn pareto_net() -> NetworkModel {
    NetworkModel::w_ars(Arc::new(Pareto::new(1.5, 1.2)), Arc::new(Pareto::new(0.8, 2.0)))
}

fn opts(seed: u64) -> ClusterOptions {
    let mut o = ClusterOptions::validation(ReplicaConfig::new(3, 1, 1).unwrap(), seed);
    o.nodes = 8;
    o.op_timeout_ms = 2_000.0;
    o
}

fn source(seed_rate: f64) -> Box<dyn OpSource> {
    Box::new(OpStream::new(
        Poisson::per_second(seed_rate),
        UniformKeys::new(8),
        OpMix::new(0.5),
        1,
    ))
}

/// One open-loop run on the given engine, returning the report and the
/// recorded history; `storm` installs the all-faults buggify preset and a
/// mid-run crash before load starts.
fn run(kind: EngineKind, seed: u64, storm: bool) -> (OpenLoopReport, OpHistory) {
    let engine = OpenLoopOptions::new(1_200.0, 300.0, 1_500.0);
    let mut history = OpHistory::new();
    let report = run_open_loop_on(
        kind,
        opts(seed),
        &pareto_net(),
        &engine,
        6,
        ClientOptions { op_timeout_ms: 2_000.0, ..ClientOptions::default() },
        |_| source(30.0),
        |cluster| {
            cluster.enable_history();
            if storm {
                cluster.network().set_fault_profile(FaultProfile::storm(seed)).unwrap();
                cluster.crash_node_at(2, pbs::sim::SimTime::from_ms(400.0), 300.0);
            }
        },
        |cluster| {
            let h = cluster.take_history();
            let check = check_run(&h, cluster, false);
            assert!(check.is_clean(), "checker oracle disagreed with the streaming engine: {check:?}");
            history = h;
        },
    )
    .expect("positive-minimum model partitions cleanly");
    (report, history)
}

/// The tentpole invariant: for each worker count, the parallel engine's
/// op history and report are identical to a serial run over the same
/// partition plan — verified through the checker oracle on both sides.
#[test]
fn parallel_history_matches_serial_clean() {
    for workers in [1usize, 2, 4] {
        let (serial_report, serial_hist) =
            run(EngineKind::SerialPartitioned { workers }, 17, false);
        let (par_report, par_hist) = run(EngineKind::Parallel { workers }, 17, false);
        assert_eq!(serial_hist, par_hist, "{workers}-worker history diverged from serial");
        assert_eq!(serial_report, par_report, "{workers}-worker counters diverged");
        assert!(par_report.issued > 100, "workload too small to be meaningful");
    }
}

/// A one-partition plan is the unrestricted coordinator pick, so the
/// plain serial engine and the partitioned ones agree exactly.
#[test]
fn one_partition_reproduces_the_plain_serial_run() {
    let (plain_report, plain_hist) = run(EngineKind::Serial, 23, false);
    let (sp_report, sp_hist) = run(EngineKind::SerialPartitioned { workers: 1 }, 23, false);
    let (par_report, par_hist) = run(EngineKind::Parallel { workers: 1 }, 23, false);
    assert_eq!(plain_hist, sp_hist);
    assert_eq!(plain_report, sp_report);
    assert_eq!(plain_hist, par_hist);
    assert_eq!(plain_report, par_report);
}

/// Equivalence must survive the everything-at-once buggify storm plus a
/// mid-run crash: drops, duplicates, reorders, slow nodes, disk lag, and
/// clock drift are all sender- or node-local decisions, so partitioning
/// cannot perturb them.
#[test]
fn parallel_history_matches_serial_under_buggify_storm() {
    for workers in [2usize, 4] {
        let (serial_report, serial_hist) =
            run(EngineKind::SerialPartitioned { workers }, 29, true);
        let (par_report, par_hist) = run(EngineKind::Parallel { workers }, 29, true);
        assert_eq!(serial_hist, par_hist, "storm: {workers}-worker history diverged");
        assert_eq!(serial_report, par_report, "storm: {workers}-worker counters diverged");
        // The storm must actually bite for this to mean anything.
        assert!(
            par_report.failed_writes + par_report.incomplete_reads > 0
                || par_report.consistency_rate() < 1.0,
            "storm run suspiciously clean: {par_report:?}"
        );
    }
}

/// One open-loop run under a **scheduled** storm (calm 0–300 ms, full
/// storm 300–900 ms, calm tail) plus a mid-storm crash, returning the
/// report, the history, and the complete checker verdict — order oracle
/// included.
fn run_scheduled(kind: EngineKind, seed: u64) -> (OpenLoopReport, OpHistory, CheckReport) {
    let engine = OpenLoopOptions::new(1_200.0, 300.0, 1_500.0);
    let mut history = OpHistory::new();
    let mut check = CheckReport::default();
    let report = run_open_loop_on(
        kind,
        opts(seed),
        &pareto_net(),
        &engine,
        6,
        ClientOptions { op_timeout_ms: 2_000.0, ..ClientOptions::default() },
        |_| source(30.0),
        |cluster| {
            cluster.enable_history();
            cluster
                .network()
                .set_fault_schedule(FaultSchedule::calm_storm_calm(
                    FaultProfile::storm(seed),
                    300.0,
                    900.0,
                ))
                .unwrap();
            cluster.crash_node_at(2, pbs::sim::SimTime::from_ms(400.0), 300.0);
        },
        |cluster| {
            history = cluster.take_history();
            check = check_run(&history, cluster, false);
        },
    )
    .expect("positive-minimum model partitions cleanly");
    (report, history, check)
}

/// The adversarial audit across engines: under a scheduled storm with a
/// mid-storm crash, every worker count must produce the identical op
/// history **and the identical full `CheckReport`** — session counters,
/// label recount, and the per-key order oracle — and that report must be
/// clean (the oracle never false-positives on fault-induced staleness).
#[test]
fn scheduled_storm_order_oracle_agrees_across_engines() {
    for workers in [1usize, 2, 4] {
        let (serial_report, serial_hist, serial_check) =
            run_scheduled(EngineKind::SerialPartitioned { workers }, 41);
        let (par_report, par_hist, par_check) =
            run_scheduled(EngineKind::Parallel { workers }, 41);
        assert_eq!(serial_hist, par_hist, "{workers}-worker scheduled-storm history diverged");
        assert_eq!(serial_report, par_report, "{workers}-worker counters diverged");
        assert_eq!(
            serial_check, par_check,
            "{workers}-worker CheckReport diverged from serial"
        );
        assert!(
            par_check.is_clean(),
            "order oracle false-positived under the scheduled storm: {par_check:?}"
        );
        assert!(par_check.order.reads_checked > 100, "audit too small to be meaningful");
        assert!(par_check.order.writes_tracked > 50);
        // The storm window must actually bite for the cleanliness claim
        // to carry weight.
        assert!(
            par_report.failed_writes + par_report.incomplete_reads > 0
                || par_report.consistency_rate() < 1.0,
            "scheduled storm suspiciously clean: {par_report:?}"
        );
    }
}

/// Bitwise reproducibility per `(seed, workers)`: the paper's whole
/// methodology rests on reproducible runs, and threads must not cost it.
#[test]
fn parallel_runs_are_bit_reproducible_per_seed_and_workers() {
    for workers in [1usize, 2, 4] {
        let (a_report, a_hist) = run(EngineKind::Parallel { workers }, 31, false);
        let (b_report, b_hist) = run(EngineKind::Parallel { workers }, 31, false);
        assert_eq!(a_hist, b_hist, "{workers}-worker rerun diverged");
        assert_eq!(a_report, b_report);
    }
    let (x, _) = run(EngineKind::Parallel { workers: 2 }, 31, false);
    let (y, _) = run(EngineKind::Parallel { workers: 2 }, 32, false);
    assert_ne!(x, y, "different seeds must differ");
}

/// A latency model whose support minimum is zero (exponential legs can be
/// arbitrarily fast) cannot bound cross-partition delays: the engine must
/// reject it with a typed error at partition time, not deadlock or creep.
#[test]
fn zero_minimum_latency_model_is_rejected_at_partition_time() {
    let exp_net = NetworkModel::w_ars(
        Arc::new(Exponential::from_mean(5.0)),
        Arc::new(Exponential::from_mean(1.0)),
    );
    let err = Cluster::with_engine(opts(1), exp_net.clone(), EngineKind::Parallel { workers: 2 })
        .expect_err("exponential legs have a zero support minimum");
    assert_eq!(err, PdesError::DegenerateLookahead { lookahead_ms: 0.0 });

    let engine = OpenLoopOptions::new(500.0, 250.0, 500.0);
    let err = run_open_loop_parallel(
        opts(1),
        &exp_net,
        &engine,
        2,
        ClientOptions::default(),
        2,
        |_| source(10.0),
        |_| {},
    )
    .expect_err("the open-loop entry point surfaces the same typed error");
    assert!(matches!(err, PdesError::DegenerateLookahead { .. }));

    // The serial engines accept the very same model.
    assert!(Cluster::with_engine(opts(1), exp_net, EngineKind::Serial).is_ok());
}

/// Partition-plan structure at the cluster level: every node in exactly
/// one partition, replica sets free to span partitions, and a live
/// `set_replication` ring rebuild leaves the plan untouched.
#[test]
fn partition_plan_covers_nodes_and_survives_replication_changes() {
    let mut cluster = Cluster::with_engine(
        opts(5),
        pareto_net(),
        EngineKind::SerialPartitioned { workers: 3 },
    )
    .unwrap();
    let plan = cluster.partition_plan().clone();
    assert_eq!(plan.workers(), 3);

    let mut owner = vec![None; 8];
    for w in 0..3 {
        for node in plan.node_range(w) {
            assert!(owner[node].is_none(), "node {node} owned twice");
            owner[node] = Some(w);
        }
    }
    assert!(owner.iter().all(Option::is_some), "uncovered node: {owner:?}");

    // With 8 nodes in 3 partitions and N=3 replica sets off the hash
    // ring, some key's replicas must straddle a partition boundary —
    // replica placement is *not* constrained by the plan.
    let spans = (0..200u64).any(|key| {
        let partitions: Vec<usize> = cluster
            .replicas_of(key)
            .iter()
            .map(|&n| plan.worker_of_node(n as u32))
            .collect();
        partitions.iter().any(|&p| p != partitions[0])
    });
    assert!(spans, "no replica set spans partitions — the test lost its teeth");

    // A live N change rebuilds the ring but never the partition plan.
    cluster.set_replication(ReplicaConfig::new(5, 2, 4).unwrap());
    assert_eq!(cluster.partition_plan(), &plan, "plan must survive a ring rebuild");
    for key in 0..50u64 {
        let reps = cluster.replicas_of(key);
        assert_eq!(reps.len(), 5, "new replication factor in effect");
        assert!(reps.iter().all(|&n| n < 8));
    }
}
