//! Cross-crate validation: the pbs-core closed forms, the pbs-quorum
//! Monte Carlo, and the pbs-wars engine must all agree where their domains
//! overlap.

use pbs::dist::Constant;
use pbs::math::tvisibility::{t_visibility_violation, EmpiricalDiffusion};
use pbs::math::{staleness, ReplicaConfig};
use pbs::quorum::{analysis, RandomFixed};
use pbs::wars::{IidModel, TVisibility};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn cfg(n: u32, r: u32, w: u32) -> ReplicaConfig {
    ReplicaConfig::new(n, r, w).unwrap()
}

/// Equation 1 (closed form) vs. random-subset Monte Carlo, across a grid of
/// configurations.
#[test]
fn eq1_matches_random_subset_mc() {
    for (n, r, w) in [(2u32, 1u32, 1u32), (3, 1, 1), (3, 1, 2), (4, 2, 1), (7, 2, 3)] {
        let exact = staleness::non_intersection_probability(cfg(n, r, w));
        let sys = RandomFixed::new(n, r, w);
        let mc = 1.0 - analysis::intersection_probability(&sys, 150_000, 99);
        assert!((exact - mc).abs() < 0.006, "N={n},R={r},W={w}: {exact} vs {mc}");
    }
}

/// Equation 2 vs. k independent write-quorum draws.
#[test]
fn eq2_matches_k_quorum_mc() {
    let c = cfg(4, 1, 2);
    let sys = RandomFixed::new(4, 1, 2);
    for k in [1u32, 2, 4, 8] {
        let exact = staleness::k_staleness_violation(c, k);
        let mc = analysis::k_staleness_mc(&sys, k, 150_000, 7);
        assert!((exact - mc).abs() < 0.006, "k={k}: {exact} vs {mc}");
    }
}

/// Equation 4 with an *empirical* diffusion extracted from WARS write
/// propagation must match the WARS engine itself when reads are
/// instantaneous (Eq. 4's assumption).
///
/// Setup: W ~ Exp, A = R = S = 0. WARS commit time is the W-th smallest
/// write delay; the straggler arrival offsets feed an
/// `EmpiricalDiffusion`; both sides then predict `p_st(t)`.
#[test]
fn eq4_empirical_diffusion_matches_instantaneous_wars() {
    let c = cfg(3, 1, 1);
    let trials = 120_000;

    // Extract straggler offsets the same way WARS computes commit times.
    let mut rng = StdRng::seed_from_u64(1234);
    let exp = pbs::dist::Exponential::from_rate(0.25);
    let mut offsets: Vec<Vec<f64>> = Vec::with_capacity(trials);
    {
        use pbs::dist::LatencyDistribution;
        for _ in 0..trials {
            let mut ws: Vec<f64> = (0..3).map(|_| exp.sample(&mut rng)).collect();
            ws.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let wt = ws[0]; // W = 1
            offsets.push(ws[1..].iter().map(|w| w - wt).collect());
        }
    }
    let diffusion = EmpiricalDiffusion::new(c, offsets);

    // WARS with zero A/R/S: reads are instantaneous at commit + t.
    let model = IidModel::new(
        c,
        "instant-reads",
        Arc::new(pbs::dist::Exponential::from_rate(0.25)),
        Arc::new(Constant::new(0.0)),
        Arc::new(Constant::new(0.0)),
        Arc::new(Constant::new(0.0)),
    );
    let tv = TVisibility::simulate(&model, trials, 77);

    for t in [0.0, 1.0, 4.0, 10.0, 25.0] {
        let eq4 = t_visibility_violation(c, &diffusion, t);
        let wars = tv.violation(t);
        assert!(
            (eq4 - wars).abs() < 0.01,
            "t={t}: Eq.4 {eq4} vs WARS {wars}"
        );
    }
}

/// Expanding quorums can only be fresher than the frozen closed form: the
/// WARS violation at any t is bounded by Eq. 1.
#[test]
fn wars_never_exceeds_frozen_bound() {
    for (n, r, w) in [(3u32, 1u32, 1u32), (3, 1, 2), (5, 2, 1)] {
        let c = cfg(n, r, w);
        let model = pbs::wars::production::exponential_model(c, 0.2, 0.5);
        let tv = TVisibility::simulate(&model, 60_000, 5);
        let bound = staleness::non_intersection_probability(c);
        for t in [0.0, 1.0, 10.0] {
            assert!(
                tv.violation(t) <= bound + 0.01,
                "N={n},R={r},W={w},t={t}: {} > {bound}",
                tv.violation(t)
            );
        }
    }
}
