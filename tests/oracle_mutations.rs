//! Mutation testing for the order oracle: each test flips one
//! [`ProtocolMutations`] flag that deliberately breaks a convergence
//! mechanism (read repair, version merge, hint replay) and asserts the
//! checker catches it with **exactly** the expected violation type, while
//! the identical scenario with the mutation off stays fully clean.
//!
//! Scenarios are engineered deterministic: with constant leg delays every
//! replica's response arrives at the same instant, and the engine breaks
//! equal-time ties in origin-id order — so an `R = 1` read always sources
//! the lowest-id replica, the "victim" each scenario arranges to be
//! stale.
//!
//! Each scenario also pins down how the WGL linearizability checker
//! relates to the order oracle (neither subsumes the other):
//!
//! * WGL is **stronger on reads**: it convicts plain staleness (a read
//!   missing a committed write) that the order oracle deliberately
//!   permits under partial quorums, and it catches every read-visible
//!   mutation here — lost updates and rollbacks surface as stale reads,
//!   phantoms as unattributable versions.
//! * The order oracle is **stronger on silent divergence**: a mutation
//!   with no read to expose it (`swallow_hints`' never-replayed hint) is
//!   invisible to WGL — a history with no reads is trivially
//!   linearizable — and only the final-state lost-update rule flags it.

use pbs::dist::Constant;
use pbs::kvs::checker::{check_run, OrderViolation};
use pbs::kvs::cluster::{Cluster, ClusterOptions};
use pbs::kvs::{CheckReport, NetworkModel, ProtocolMutations};
use pbs::math::ReplicaConfig;
use pbs::sim::SimTime;
use std::sync::Arc;

fn net_const(ms: f64) -> NetworkModel {
    NetworkModel::w_ars(Arc::new(Constant::new(ms)), Arc::new(Constant::new(ms)))
}

fn ms(t: f64) -> SimTime {
    SimTime::from_ms(t)
}

/// Base config: N=3 nodes, R=W=1, reliable constant-latency network.
fn opts(seed: u64, mutations: ProtocolMutations) -> ClusterOptions {
    let cfg = ReplicaConfig::new(3, 1, 1).unwrap();
    let mut o = ClusterOptions::validation(cfg, seed);
    o.mutations = mutations;
    o
}

/// Crash the first-responding replica of `key` through a write, recover
/// it, then read twice. With read repair on, the second read must see the
/// repaired (healed) value; the mutations break that healing in two
/// distinct ways.
///
/// Returns `(report, write seq, read2 seq, victim's stored seq)`.
fn read_repair_scenario(
    mutations: ProtocolMutations,
    convergence: bool,
) -> (CheckReport, u64, Option<u64>, u64) {
    let mut o = opts(41, mutations);
    o.read_repair = true;
    let mut cluster = Cluster::new(o, net_const(1.0));
    cluster.enable_history();
    let key = 7u64;
    let victim = *cluster.replicas_of(key).iter().min().unwrap();
    let coord = (0..3).find(|&n| n != victim).unwrap();

    // The victim misses the write outright (down, store kept on recovery).
    cluster.crash_node_at(victim, ms(0.0), 300.0);
    cluster.advance_to(ms(10.0));
    let w = cluster.write_from(coord, key);
    assert!(w.commit.is_some(), "two healthy replicas commit W=1");

    // r1 sources the recovered (empty) victim and triggers read repair
    // once the fresher responses arrive; r2 then re-reads the victim.
    let r1 = cluster.read_at_from(coord, key, ms(350.0));
    assert_eq!(r1.returned_seq, None, "victim responds first and is empty");
    let r2 = cluster.read_at_from(coord, key, ms(500.0));
    cluster.advance_to(ms(1_000.0));

    let history = cluster.take_history();
    let check = check_run(&history, &cluster, convergence);
    let stored = cluster.node(victim).stored_version(key).map(|v| v.seq).unwrap_or(0);
    (check, w.seq, r2.returned_seq, stored)
}

/// `skip_read_repair`: the stale replica is never healed, and with no
/// other anti-entropy path the run ends divergent — the final-state audit
/// reports it as a lost update on the victim.
#[test]
fn skip_read_repair_is_caught_as_lost_update() {
    let mutations = ProtocolMutations { skip_read_repair: true, ..Default::default() };
    let (check, w_seq, r2_seq, stored) = read_repair_scenario(mutations, true);
    assert_eq!(r2_seq, None, "victim still empty: repair never ran");
    assert_eq!(stored, 0, "mutation held: victim never received the write");
    assert!(check.order.lost_updates >= 1, "oracle missed the regression: {check:?}");
    assert_eq!(check.order.non_monotone, 0);
    assert_eq!(check.order.phantoms, 0);
    match check.order.first_lost_update {
        Some(OrderViolation::LostUpdate { expected_seq, .. }) => assert_eq!(expected_seq, w_seq),
        other => panic!("expected a LostUpdate example, got {other:?}"),
    }
    // WGL sees the same regression from the read side: both empty reads
    // started long after the write committed, so both are stale.
    assert_eq!(check.lin.violation_count(), 2, "WGL must convict r1 and r2: {:?}", check.lin);
    assert_eq!(check.lin.violated_keys, 1);
}

/// `corrupt_read_repair`: repair installs a fabricated version far in the
/// future of any real write; the next read exposes it and the oracle must
/// flag a phantom — a version no client ever wrote.
#[test]
fn corrupt_read_repair_is_caught_as_phantom_version() {
    let mutations = ProtocolMutations { corrupt_read_repair: true, ..Default::default() };
    let (check, w_seq, r2_seq, stored) = read_repair_scenario(mutations, true);
    assert_eq!(r2_seq, Some(stored), "r2 sources the corrupt victim");
    assert!(stored > w_seq, "repair installed a fabricated future version");
    assert!(check.order.phantoms >= 1, "oracle missed the phantom: {check:?}");
    assert_eq!(check.order.lost_updates, 0);
    assert_eq!(check.order.non_monotone, 0);
    match check.order.first_phantom {
        Some(OrderViolation::PhantomVersion { seen_seq, .. }) => assert_eq!(seen_seq, stored),
        other => panic!("expected a PhantomVersion example, got {other:?}"),
    }
    // WGL convicts both reads: r1 for missing the committed write, r2 for
    // returning a version no recorded write produced (no timed-out write
    // exists on the key, so the orphan absorption rule does not apply).
    assert_eq!(check.lin.violation_count(), 2, "WGL must convict r1 and r2: {:?}", check.lin);
}

/// Control: the identical scenario with all mutations off heals the
/// victim and passes every audit, convergence included.
#[test]
fn read_repair_scenario_is_clean_without_mutations() {
    let (check, w_seq, r2_seq, stored) = read_repair_scenario(ProtocolMutations::default(), true);
    assert_eq!(r2_seq, Some(w_seq), "repair healed the victim before r2");
    assert_eq!(stored, w_seq);
    assert!(check.is_clean(), "clean build must stay clean: {check:?}");
    // WGL is deliberately stronger than `is_clean()`: r1's engineered
    // staleness (the empty victim responds first under R=1) is legal
    // partial-quorum behaviour, yet still a linearizability violation.
    assert_eq!(check.lin.violation_count(), 1, "exactly r1's staleness: {:?}", check.lin);
    assert!(!check.lin.all_linearizable());
}

/// Two writes from two coordinators while the victim is down, so each
/// stashes a hint; the flush phases (stash time + interval) deliver the
/// *newer* version first and the *older* one second. A sound store
/// max-merges the late old hint into a no-op; `drop_version_merge`
/// overwrites and rolls the victim back between two reads that source it.
///
/// Returns `(report, seq1, seq2, r1 seq, r2 seq)`.
fn hint_rollback_scenario(
    mutations: ProtocolMutations,
    convergence: bool,
) -> (CheckReport, u64, u64, Option<u64>, Option<u64>) {
    let mut o = opts(43, mutations);
    o.hinted_handoff = true;
    o.hint_timeout_ms = 50.0;
    o.hint_flush_interval_ms = 200.0;
    let mut cluster = Cluster::new(o, net_const(1.0));
    cluster.enable_history();
    let key = 9u64;
    let victim = *cluster.replicas_of(key).iter().min().unwrap();
    let coords: Vec<usize> = (0..3).filter(|&n| n != victim).collect();

    cluster.crash_node_at(victim, ms(0.0), 350.0);
    // w1 at t=10: hint stashed at ~60, flush ticks at ~260, ~460, ...
    cluster.advance_to(ms(10.0));
    let w1 = cluster.write_from(coords[0], key);
    assert!(w1.commit.is_some());
    // w2 at t=150: hint stashed at ~200, flush ticks at ~400, ...
    cluster.advance_to(ms(150.0));
    let w2 = cluster.write_from(coords[1], key);
    assert!(w2.commit.is_some());
    assert!(w2.seq > w1.seq);

    // Victim recovers at 350. The ~400 flush delivers v2; r1 exposes it.
    // The ~460 flush then delivers the *older* v1; r2 re-reads the victim.
    let r1 = cluster.read_at_from(coords[1], key, ms(410.0));
    let r2 = cluster.read_at_from(coords[1], key, ms(470.0));
    cluster.advance_to(ms(1_000.0));

    let history = cluster.take_history();
    let check = check_run(&history, &cluster, convergence);
    (check, w1.seq, w2.seq, r1.returned_seq, r2.returned_seq)
}

/// `drop_version_merge`: the late old hint rolls the victim back, and the
/// second read goes backwards in time relative to the first — a
/// non-monotone exposure, with no phantoms (both versions are real).
#[test]
fn drop_version_merge_is_caught_as_non_monotone_exposure() {
    let mutations = ProtocolMutations { drop_version_merge: true, ..Default::default() };
    let (check, seq1, seq2, r1, r2) = hint_rollback_scenario(mutations, false);
    assert_eq!(r1, Some(seq2), "r1 sees the newer version the early flush delivered");
    assert_eq!(r2, Some(seq1), "mutation held: the late old hint rolled the victim back");
    assert!(check.order.non_monotone >= 1, "oracle missed the rollback: {check:?}");
    assert_eq!(check.order.phantoms, 0, "both exposed versions were really written");
    assert_eq!(check.order.lost_updates, 0, "neither write was acked by the victim");
    match check.order.first_non_monotone {
        Some(OrderViolation::NonMonotoneExposure { seen_seq, expected_seq, .. }) => {
            assert_eq!(seen_seq, seq1);
            assert_eq!(expected_seq, seq2);
        }
        other => panic!("expected a NonMonotoneExposure example, got {other:?}"),
    }
    // The rollback is also a WGL violation — r2 misses the committed v2 —
    // with a real window (v2's commit to r2's start).
    assert_eq!(check.lin.violation_count(), 1, "WGL must convict r2: {:?}", check.lin);
    assert!(check.lin.first_violation().unwrap().window_ns() > 0);
}

/// Control: with max-merge intact the late old hint is a no-op, both
/// reads see v2, and the full audit (convergence included) is clean.
#[test]
fn hint_rollback_scenario_is_clean_without_mutations() {
    let (check, _seq1, seq2, r1, r2) = hint_rollback_scenario(ProtocolMutations::default(), true);
    assert_eq!(r1, Some(seq2));
    assert_eq!(r2, Some(seq2), "max-merge ignores the stale hint");
    assert!(check.is_clean(), "clean build must stay clean: {check:?}");
    assert!(check.lin.all_linearizable(), "both reads saw the newest commit: {:?}", check.lin);
}

/// A hint is stashed for the crashed victim; replay should heal it after
/// recovery. Returns `(report, coordinator hint count, victim stored seq,
/// write seq)`.
fn hint_replay_scenario(
    mutations: ProtocolMutations,
    convergence: bool,
) -> (CheckReport, usize, u64, u64) {
    let mut o = opts(47, mutations);
    o.hinted_handoff = true;
    o.hint_timeout_ms = 50.0;
    o.hint_flush_interval_ms = 100.0;
    let mut cluster = Cluster::new(o, net_const(1.0));
    cluster.enable_history();
    let key = 5u64;
    let victim = *cluster.replicas_of(key).iter().min().unwrap();
    let coord = (0..3).find(|&n| n != victim).unwrap();

    cluster.crash_node_at(victim, ms(0.0), 300.0);
    cluster.advance_to(ms(10.0));
    let w = cluster.write_from(coord, key);
    assert!(w.commit.is_some());
    // Recovery at 300; flush ticks every 100 ms redeliver until acked.
    cluster.advance_to(ms(1_000.0));

    let history = cluster.take_history();
    let check = check_run(&history, &cluster, convergence);
    let hints = cluster.node(coord).hint_count();
    let stored = cluster.node(victim).stored_version(key).map(|v| v.seq).unwrap_or(0);
    (check, hints, stored, w.seq)
}

/// `swallow_hints`: the flush timer fires but delivers nothing, so the
/// victim never converges — a final-state lost update, with the undying
/// hint still queued as the smoking gun.
#[test]
fn swallow_hints_is_caught_as_lost_update() {
    let mutations = ProtocolMutations { swallow_hints: true, ..Default::default() };
    let (check, hints, stored, w_seq) = hint_replay_scenario(mutations, true);
    assert_eq!(stored, 0, "mutation held: hint never replayed");
    assert_eq!(hints, 1, "the swallowed hint is never acked and never cleared");
    assert!(check.order.lost_updates >= 1, "oracle missed the regression: {check:?}");
    assert_eq!(check.order.non_monotone, 0);
    assert_eq!(check.order.phantoms, 0);
    match check.order.first_lost_update {
        Some(OrderViolation::LostUpdate { expected_seq, seen_seq, .. }) => {
            assert_eq!(expected_seq, w_seq);
            assert_eq!(seen_seq, 0);
        }
        other => panic!("expected a LostUpdate example, got {other:?}"),
    }
    // The subsumption gap, pinned: no read ever exposes the divergence,
    // so the history is trivially linearizable and WGL cannot catch this
    // mutation — only the final-state lost-update rule above does.
    assert!(check.lin.all_linearizable(), "a read-free history is vacuously linearizable");
}

/// Control: hint replay heals the victim and clears the hint; the full
/// audit is clean.
#[test]
fn hint_replay_scenario_is_clean_without_mutations() {
    let (check, hints, stored, w_seq) = hint_replay_scenario(ProtocolMutations::default(), true);
    assert_eq!(stored, w_seq, "hint replay healed the victim");
    assert_eq!(hints, 0, "delivered hint was acked and cleared");
    assert!(check.is_clean(), "clean build must stay clean: {check:?}");
    assert!(check.lin.all_linearizable(), "{:?}", check.lin);
}

/// The mutation struct itself: defaults are all-off and `any()` reflects
/// each flag, so a production config can assert it carries no mutations.
#[test]
fn default_mutations_are_inert() {
    let m = ProtocolMutations::default();
    assert!(!m.any());
    assert!(ProtocolMutations { skip_read_repair: true, ..Default::default() }.any());
    assert!(ProtocolMutations { corrupt_read_repair: true, ..Default::default() }.any());
    assert!(ProtocolMutations { drop_version_merge: true, ..Default::default() }.any());
    assert!(ProtocolMutations { swallow_hints: true, ..Default::default() }.any());
}
